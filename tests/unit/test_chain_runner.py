"""Unit tests for CHAIN-parameter scenario execution (paper Figure 5)."""

import pytest

from repro.blackbox import (
    BlackBoxRegistry,
    DemandModel,
    FunctionBlackBox,
)
from repro.core.seeds import SeedBank
from repro.errors import MarkovError
from repro.lang.binder import compile_query
from repro.scenario import ChainScenarioRunner, ScenarioMarkovAdapter
from repro.scenario.parameter import ChainParameter


def release_registry(threshold=30.0):
    registry = BlackBoxRegistry()
    registry.register(DemandModel(), "DemandModel")

    def release_week_model(params, seed):
        if params["demand"] > threshold:
            return min(params["release_week"], params["week_now"])
        return params["release_week"]

    registry.register(
        FunctionBlackBox(
            release_week_model,
            name="ReleaseWeekModel",
            parameter_names=("demand", "release_week", "week_now"),
        ),
        "ReleaseWeekModel",
    )
    return registry


FIG5 = """
DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @release_week AS CHAIN release_week
  FROM @current_week : @current_week - 1 INITIAL VALUE 52;
SELECT ReleaseWeekModel(demand, @release_week, @current_week)
    AS release_week, demand
FROM (SELECT DemandModel(@current_week, @release_week) AS demand)
INTO results;
"""


@pytest.fixture
def scenario():
    return compile_query(FIG5, release_registry()).scenario


class TestAdapter:
    def test_initial_state_from_declaration(self, scenario):
        adapter = ScenarioMarkovAdapter(
            scenario, scenario.chain_parameters[0]
        )
        assert adapter.initial_state() == 52.0

    def test_step_feeds_chain_back(self, scenario):
        adapter = ScenarioMarkovAdapter(
            scenario, scenario.chain_parameters[0]
        )
        # At week 45 with demand mean ~45 > 30, release should trigger.
        new_state = adapter.step(52.0, 45, SeedBank(2).step_seed(0, 45))
        assert new_state == 45.0

    def test_step_keeps_state_below_threshold(self, scenario):
        adapter = ScenarioMarkovAdapter(
            scenario, scenario.chain_parameters[0]
        )
        new_state = adapter.step(52.0, 1, SeedBank(2).step_seed(0, 1))
        assert new_state == 52.0

    def test_unknown_source_column_rejected(self, scenario):
        chain = ChainParameter("c", "missing", "current_week", -1, 0.0)
        with pytest.raises(MarkovError):
            ScenarioMarkovAdapter(scenario, chain)

    def test_positive_offset_rejected(self, scenario):
        chain = ChainParameter("c", "release_week", "current_week", 1, 0.0)
        with pytest.raises(MarkovError):
            ScenarioMarkovAdapter(scenario, chain)

    def test_observe_other_column(self, scenario):
        adapter = ScenarioMarkovAdapter(
            scenario, scenario.chain_parameters[0]
        )
        demand = adapter.observe(52.0, 10, SeedBank(2).step_seed(0, 10), "demand")
        assert 0.0 < demand < 30.0


class TestChainScenarioRunner:
    def test_naive_and_jigsaw_agree_on_mean(self, scenario):
        bank = SeedBank(7)
        runner = ChainScenarioRunner(
            scenario,
            instance_count=60,
            fingerprint_size=10,
            seed_bank=bank,
        )
        naive = runner.run_naive(40)
        jigsaw = runner.run_jigsaw(40)
        assert jigsaw.final_metrics.expectation == pytest.approx(
            naive.final_metrics.expectation, abs=3.0
        )

    def test_jigsaw_saves_invocations(self, scenario):
        bank = SeedBank(7)
        runner = ChainScenarioRunner(
            scenario, instance_count=80, fingerprint_size=10, seed_bank=bank
        )
        naive = runner.run_naive(30)
        jigsaw = runner.run_jigsaw(30)
        assert (
            jigsaw.markov.step_invocations < naive.markov.step_invocations
        )

    def test_requires_exactly_one_chain(self):
        registry = release_registry()
        source = """
        DECLARE PARAMETER @w AS RANGE 0 TO 4 STEP BY 1;
        SELECT DemandModel(@w, 50) AS demand INTO results;
        """
        scenario = compile_query(source, registry).scenario
        with pytest.raises(MarkovError):
            ChainScenarioRunner(scenario)

    def test_release_converges_to_threshold_crossing(self, scenario):
        runner = ChainScenarioRunner(
            scenario, instance_count=60, fingerprint_size=10
        )
        result = runner.run_naive(52)
        # Demand mean ~week crosses 30 around week 30.
        assert 20.0 <= result.final_metrics.expectation <= 40.0
