"""Property-based snapshot round trips and corruption detection.

Two families of properties:

* **Bitwise round trips.**  Generated fingerprints, mappings, metric sets,
  and whole basis stores survive serialize∘deserialize *bit-identically* —
  including nan/inf entries and subnormal magnitudes, because every float
  crosses the JSON boundary as a ``float.hex()`` string.
* **Corruption is always typed, never partial.**  Truncating or
  bit-flipping any byte of any snapshot file either leaves the snapshot
  loadable with the *original* content (flip landed in dead zip/JSON
  whitespace — impossible here, so in practice it doesn't) or raises
  :class:`~repro.errors.SnapshotCorruptionError`; a load never returns a
  store built from damaged bytes.
"""

import json
import math
import os

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import persist
from repro.core.basis import BasisStore
from repro.core.estimator import Estimator, MetricSet
from repro.core.fingerprint import Fingerprint
from repro.core.mapping import (
    AffineMapping,
    PiecewiseLinearMapping,
    _NegatedPiecewise,
)
from repro.errors import PersistError, SnapshotCorruptionError

# Full-range doubles, including nan, inf, subnormals, and signed zeros:
# hex encoding must round-trip every bit pattern a store can hold.
any_float = st.floats(allow_nan=True, allow_infinity=True, width=64)
finite_float = st.floats(allow_nan=False, allow_infinity=False, width=64)

fingerprints = st.lists(finite_float, min_size=1, max_size=12).map(
    lambda vs: Fingerprint(tuple(vs))
)


def _bit_equal(a, b):
    """Float equality treating nan == nan and distinguishing -0.0/0.0.

    nan signs are not compared: ``float.hex`` canonicalizes every nan to
    ``'nan'``, and no store semantics distinguish nan payloads (array
    payloads travel through ``.npy`` files, which preserve them exactly).
    """
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return math.copysign(1.0, a) == math.copysign(1.0, b) and a == b


class TestFloatCodec:
    @given(value=any_float)
    @settings(max_examples=400)
    def test_hex_roundtrip_is_bitwise(self, value):
        again = persist.decode_float(persist.encode_float(value))
        assert _bit_equal(value, again)

    @given(value=any_float)
    @settings(max_examples=200)
    def test_roundtrip_survives_json(self, value):
        encoded = json.loads(json.dumps(persist.encode_float(value)))
        assert _bit_equal(value, persist.decode_float(encoded))


class TestValueRoundTrips:
    @given(fp=fingerprints)
    @settings(max_examples=200)
    def test_fingerprint_roundtrip(self, fp):
        again = persist.decode_fingerprint(persist.encode_fingerprint(fp))
        assert again.values == fp.values
        assert again.sid_order() == fp.sid_order()

    @given(
        fp=st.lists(
            st.floats(
                min_value=-1e12,
                max_value=1e12,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=12,
        ).map(lambda vs: Fingerprint(tuple(vs)))
    )
    @settings(max_examples=200)
    def test_fingerprint_roundtrip_rebuilds_index_keys(self, fp):
        """Derived hash keys match bitwise too (bounded magnitudes: the
        normal form's span arithmetic overflows to nan near 1e308, where
        the keys are nan-poisoned for live and loaded stores alike)."""
        again = persist.decode_fingerprint(persist.encode_fingerprint(fp))
        assert again.normal_form() == fp.normal_form()
        assert again.sid_order(descending=True) == fp.sid_order(
            descending=True
        )

    @given(alpha=finite_float, beta=finite_float)
    @settings(max_examples=200)
    def test_affine_mapping_roundtrip(self, alpha, beta):
        mapping = AffineMapping(alpha, beta)
        again = persist.decode_mapping(persist.encode_mapping(mapping))
        assert type(again) is AffineMapping
        assert _bit_equal(again.alpha, mapping.alpha)
        assert _bit_equal(again.beta, mapping.beta)

    @given(
        xs=st.lists(
            st.integers(min_value=-10_000, max_value=10_000),
            min_size=2,
            max_size=8,
            unique=True,
        ),
        ys=st.lists(finite_float, min_size=8, max_size=8),
        negated=st.booleans(),
    )
    @settings(max_examples=200)
    def test_piecewise_mapping_roundtrip(self, xs, ys, negated):
        knots_x = tuple(float(x) for x in sorted(xs))
        knots_y = tuple(ys[: len(knots_x)])
        mapping = PiecewiseLinearMapping(knots_x, knots_y)
        if negated:
            mapping = _NegatedPiecewise(mapping)
        again = persist.decode_mapping(persist.encode_mapping(mapping))
        assert type(again) is type(mapping)
        inner_a = again.inner if negated else again
        inner_b = mapping.inner if negated else mapping
        assert inner_a.knots_x == inner_b.knots_x
        assert all(
            _bit_equal(a, b)
            for a, b in zip(inner_a.knots_y, inner_b.knots_y)
        )

    @given(
        # Bounded magnitudes: np.histogram needs finite, resolvable bin
        # edges, which extreme doubles deny — an Estimator precondition,
        # not a persistence one (matrices/samples go through .npy, which
        # is bit-exact for every double; scalar extremes are covered by
        # the float-codec tests above).
        samples=st.lists(
            st.floats(
                min_value=-1e9,
                max_value=1e9,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=40,
        ),
        with_histogram=st.booleans(),
    )
    @settings(max_examples=150)
    def test_metric_set_roundtrip(self, samples, with_histogram):
        estimator = Estimator(histogram_bins=4 if with_histogram else 0)
        metrics = estimator.estimate(np.asarray(samples, dtype=float))
        again = persist.decode_metrics(persist.encode_metrics(metrics))
        assert isinstance(again, MetricSet)
        # MetricSet is a frozen dataclass of floats/tuples: dataclass
        # equality is exact — and nan-free here, so == is the full check.
        assert again == metrics


def _store_from(sample_rows):
    store = BasisStore()
    for row in sample_rows:
        samples = np.asarray(row, dtype=float)
        store.add(Fingerprint(tuple(samples[:4])), samples)
    return store


store_contents = st.lists(
    st.lists(finite_float, min_size=4, max_size=12),
    min_size=1,
    max_size=5,
)


class TestStoreRoundTrip:
    @given(rows=store_contents)
    @settings(max_examples=50, deadline=None)
    def test_store_roundtrip_bitwise(self, rows, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("snap") / "store")
        live = _store_from(rows)
        persist.save_store(live, path)
        loaded = persist.load_store(path, like=BasisStore())
        assert len(loaded) == len(live)
        for basis_id in range(len(live)):
            live_basis = live.get(basis_id)
            loaded_basis = loaded.get(basis_id)
            assert (
                loaded_basis.fingerprint.values
                == live_basis.fingerprint.values
            )
            np.testing.assert_array_equal(
                np.asarray(loaded_basis.samples),
                np.asarray(live_basis.samples),
            )
            assert loaded_basis.metrics == live_basis.metrics
        assert loaded.stats.as_dict() == live.stats.as_dict()


class TestCorruptionDetection:
    """Damage anywhere in a snapshot raises the typed corruption error."""

    def _snapshot(self, tmp_path):
        path = str(tmp_path / "store")
        live = _store_from([[0.0, 1.0, 0.5, 2.0, -1.0, 3.5]] * 3)
        live.match(Fingerprint((0.0, 2.0, 1.0, 4.0)))  # materialize keys
        persist.save_store(live, path)
        return path

    def _files(self, path):
        return sorted(
            os.path.join(path, name) for name in os.listdir(path)
        )

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncation_raises_typed_error(self, data, tmp_path_factory):
        path = self._snapshot(tmp_path_factory.mktemp("snap"))
        files = self._files(path)
        target = data.draw(st.sampled_from(files), label="file")
        with open(target, "rb") as handle:
            raw = handle.read()
        # Cut into real content: the manifest ends with a newline, and a
        # whitespace-only truncation leaves a byte-equivalent (still
        # valid) document — that is not corruption.  Array files reject
        # any shortening via their recorded byte length, so the tighter
        # bound only skips cases that are equally fatal.
        max_keep = len(raw.rstrip()) - 1
        keep = data.draw(
            st.integers(min_value=0, max_value=max(0, max_keep)),
            label="keep_bytes",
        )
        with open(target, "wb") as handle:
            handle.write(raw[:keep])
        try:
            persist.load_store(path, like=BasisStore())
            raise AssertionError("truncated snapshot loaded successfully")
        except SnapshotCorruptionError:
            pass

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_bit_flip_raises_typed_error(self, data, tmp_path_factory):
        path = self._snapshot(tmp_path_factory.mktemp("snap"))
        files = self._files(path)
        target = data.draw(st.sampled_from(files), label="file")
        with open(target, "rb") as handle:
            raw = bytearray(handle.read())
        position = data.draw(
            st.integers(min_value=0, max_value=len(raw) - 1),
            label="byte",
        )
        bit = data.draw(st.integers(min_value=0, max_value=7), label="bit")
        raw[position] ^= 1 << bit
        with open(target, "wb") as handle:
            handle.write(bytes(raw))
        try:
            persist.load_store(path, like=BasisStore())
            raise AssertionError("bit-flipped snapshot loaded successfully")
        except SnapshotCorruptionError:
            pass

    def test_deleted_array_file_raises(self, tmp_path):
        path = self._snapshot(tmp_path)
        for name in os.listdir(path):
            if name.endswith(".npy"):
                os.unlink(os.path.join(path, name))
                break
        try:
            persist.load_store(path, like=BasisStore())
            raise AssertionError("snapshot loaded with a missing array")
        except SnapshotCorruptionError:
            pass

    def test_non_snapshot_directory_raises(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"hello": "world"}')
        try:
            persist.load_store(str(tmp_path))
            raise AssertionError("non-snapshot directory loaded")
        except SnapshotCorruptionError:
            pass

    def test_missing_directory_is_persist_error(self, tmp_path):
        try:
            persist.load_store(str(tmp_path / "nope"))
            raise AssertionError("missing snapshot loaded")
        except PersistError:
            pass
