"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main

QUERY = """
DECLARE PARAMETER @current_week AS RANGE 0 TO 6 STEP BY 2;
DECLARE PARAMETER @feature_release AS SET (2, 4);
SELECT DemandModel(@current_week, @feature_release) AS demand
INTO results;
OPTIMIZE SELECT @feature_release FROM results
WHERE MAX(EXPECT demand) < 100
GROUP BY feature_release
FOR MAX @feature_release;
"""

GRAPH_QUERY = """
DECLARE PARAMETER @current_week AS RANGE 0 TO 6 STEP BY 2;
SELECT DemandModel(@current_week, 3) AS demand INTO results;
GRAPH OVER @current_week EXPECT demand WITH bold red;
"""


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "scenario.sql"
    path.write_text(QUERY)
    return str(path)


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.sql"
    path.write_text(GRAPH_QUERY)
    return str(path)


class TestExplain:
    def test_reports_structure(self, query_file, capsys):
        assert main(["explain", query_file]) == 0
        out = capsys.readouterr().out
        assert "@current_week" in out
        assert "RangeParameter" in out
        assert "demand" in out
        assert "optimize clause: yes" in out

    def test_missing_file(self, capsys):
        assert main(["explain", "/no/such/file.sql"]) == 2
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_optimize_answer_printed(self, query_file, capsys):
        assert main(["run", query_file, "--samples", "30"]) == 0
        out = capsys.readouterr().out
        assert "explored 8 points" in out
        assert "best: @feature_release=4" in out

    def test_run_without_optimize_prints_table(self, graph_file, capsys):
        assert main(["run", graph_file, "--samples", "30"]) == 0
        out = capsys.readouterr().out
        assert "per-point expectations" in out
        assert "demand" in out

    def test_parse_error_is_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.sql"
        bad.write_text("SELECT FROM;")
        assert main(["run", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestGraph:
    def test_renders_chart(self, graph_file, capsys):
        assert main(["graph", graph_file, "--samples", "30"]) == 0
        out = capsys.readouterr().out
        assert "GRAPH OVER @current_week" in out
        assert "expect demand" in out

    def test_query_without_graph_clause(self, query_file, capsys):
        assert main(["graph", query_file]) == 2
        assert "no GRAPH clause" in capsys.readouterr().err


class TestStoreCommand:
    @pytest.fixture
    def snapshot(self, tmp_path):
        from repro.serve import build_fixture_session

        path = str(tmp_path / "snap")
        build_fixture_session(bases=5, seed=7).save(path)
        return path

    def test_info_prints_manifest_summary(self, snapshot, capsys):
        import json

        assert main(["store", "info", snapshot]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["stores"]["default"]["bases"] == 5
        assert info["version"] >= 1

    def test_verify_load_checks(self, snapshot, capsys):
        assert main(["store", "verify", snapshot]) == 0
        assert "5 bases" in capsys.readouterr().out

    def test_evict_bounds_snapshot_in_place(self, snapshot, capsys):
        from repro.api import Session

        assert main(
            ["store", "evict", snapshot, "--max-bases", "2"]
        ) == 0
        assert "evicted" in capsys.readouterr().out
        assert Session.open(snapshot).basis_count() == 2

    def test_evict_without_bounds_exits_2(self, snapshot, capsys):
        assert main(["store", "evict", snapshot]) == 2
        assert "max-bases" in capsys.readouterr().err

    def test_compact_writes_to_out_path(self, snapshot, tmp_path, capsys):
        from repro.api import Session

        out = str(tmp_path / "compacted")
        assert main(
            ["store", "compact", snapshot, "--out", out]
        ) == 0
        assert "saved" in capsys.readouterr().out
        assert Session.open(out).basis_count() == 5

    def test_verify_corrupt_snapshot_exits_2(self, snapshot, capsys):
        import os

        manifest = os.path.join(snapshot, "manifest.json")
        with open(manifest) as handle:
            text = handle.read()
        with open(manifest, "w") as handle:
            handle.write(text[: len(text) // 2])
        assert main(["store", "verify", snapshot]) == 2
        assert "error" in capsys.readouterr().err


class TestBenchCommand:
    def test_fixture_bench_writes_summary(self, tmp_path, capsys):
        import json

        out = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--requests", "60",
                "--rate", "1500",
                "--concurrency", "1,2",
                "--out", str(out),
            ]
        )
        assert code == 0
        document = json.loads(out.read_text())
        assert len(document["runs"]) == 2
        first, second = document["runs"]
        # Deterministic counters are concurrency-independent.
        assert first["counters"] == second["counters"]
        for run in document["runs"]:
            assert run["latency_p50_ms"] >= 0.0
            assert run["throughput_rps"] > 0.0

    def test_bench_against_snapshot(self, tmp_path, capsys):
        from repro.serve import build_fixture_session

        snap = str(tmp_path / "snap")
        build_fixture_session(bases=6, seed=3).save(snap)
        code = main(
            [
                "bench",
                "--store", snap,
                "--requests", "40",
                "--concurrency", "1",
            ]
        )
        assert code == 0
        import json

        document = json.loads(capsys.readouterr().out)
        assert document["store"] == snap
