"""Timing and work-counting instrumentation used by the benchmark harness.

Wall-clock times in a Python reproduction of a 2011 C#/Ruby system are only
meaningful as ratios; invocation counts (how many black-box samples were
drawn) are the stable, machine-independent cost measure, so both are exposed.

The clock itself is *injectable*: every timing consumer in this repo reads
it through :func:`perf_counter`, so tests install a :class:`FakeClock` (via
:func:`use_clock`) and get fully deterministic "timings" instead of racing
the scheduler with best-of-N retries.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

#: The active clock.  Swapped by tests; everything that measures elapsed
#: time in this repo must read through :func:`perf_counter` so the swap is
#: complete.
_clock: Callable[[], float] = time.perf_counter


def perf_counter() -> float:
    """Read the active clock (defaults to :func:`time.perf_counter`)."""
    return _clock()


def set_clock(clock: Callable[[], float]) -> Callable[[], float]:
    """Install ``clock`` as the active clock; returns the previous one."""
    global _clock
    previous = _clock
    _clock = clock
    return previous


@contextmanager
def use_clock(clock: Callable[[], float]) -> Iterator[Callable[[], float]]:
    """Scoped :func:`set_clock`: restores the previous clock on exit."""
    previous = set_clock(clock)
    try:
        yield clock
    finally:
        set_clock(previous)


class FakeClock:
    """A deterministic clock for tests.

    Each *reading* advances the reported time by ``tick`` (so the elapsed
    time between any two consecutive readings is exactly ``tick``), and
    :meth:`advance` injects extra elapsed time explicitly.  Timing-shape
    tests become exact-equality assertions instead of races.
    """

    def __init__(self, start: float = 0.0, tick: float = 1.0) -> None:
        if tick < 0.0:
            raise ValueError("tick must be non-negative")
        self._now = float(start)
        self._tick = float(tick)

    def __call__(self) -> float:
        self._now += self._tick
        return self._now

    def advance(self, seconds: float) -> None:
        """Inject ``seconds`` of virtual elapsed time."""
        if seconds < 0.0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds

    @property
    def now(self) -> float:
        """Current virtual time (without consuming a tick)."""
        return self._now


class Stopwatch:
    """Context-manager stopwatch measuring elapsed wall-clock seconds."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed += perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0


class InvocationCounter:
    """Counts named events (e.g. black-box invocations, basis matches)."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def record(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"InvocationCounter({inner})"
