"""Unit tests for parameter declarations and space enumeration."""

import pytest

from repro.errors import JigsawError
from repro.scenario.parameter import (
    ChainParameter,
    RangeParameter,
    SetParameter,
)
from repro.scenario.space import ParameterSpace


class TestRangeParameter:
    def test_inclusive_endpoints(self):
        spec = RangeParameter("w", 0.0, 52.0, 4.0)
        values = spec.values()
        assert values[0] == 0.0
        assert values[-1] == 52.0
        assert len(values) == 14

    def test_fractional_step(self):
        spec = RangeParameter("w", 0.0, 1.0, 0.1)
        assert len(spec.values()) == 11
        assert spec.values()[-1] == pytest.approx(1.0)

    def test_single_point_range(self):
        assert RangeParameter("w", 3.0, 3.0, 1.0).values() == (3.0,)

    def test_validation(self):
        with pytest.raises(JigsawError):
            RangeParameter("w", 0.0, 10.0, 0.0)
        with pytest.raises(JigsawError):
            RangeParameter("w", 10.0, 0.0, 1.0)

    def test_len(self):
        assert len(RangeParameter("w", 0.0, 9.0, 1.0)) == 10


class TestSetParameter:
    def test_members_in_order(self):
        assert SetParameter("f", (12.0, 36.0, 44.0)).values() == (
            12.0,
            36.0,
            44.0,
        )

    def test_empty_rejected(self):
        with pytest.raises(JigsawError):
            SetParameter("f", ())


class TestChainParameter:
    def chain(self):
        return ChainParameter(
            name="release",
            source_column="release_week",
            driver="current_week",
            driver_offset=-1,
            initial_value=52.0,
        )

    def test_is_chain(self):
        assert self.chain().is_chain

    def test_values_not_enumerable(self):
        with pytest.raises(JigsawError):
            self.chain().values()


class TestParameterSpace:
    def space(self):
        return ParameterSpace(
            [
                RangeParameter("a", 0.0, 2.0, 1.0),
                SetParameter("b", (10.0, 20.0)),
            ]
        )

    def test_cartesian_product(self):
        points = self.space().points_list()
        assert len(points) == 6
        assert {"a": 0.0, "b": 10.0} in points
        assert {"a": 2.0, "b": 20.0} in points

    def test_size_and_len(self):
        assert self.space().size() == 6
        assert len(self.space()) == 6

    def test_chain_excluded_from_product(self):
        space = ParameterSpace(
            [
                RangeParameter("a", 0.0, 1.0, 1.0),
                ChainParameter("c", "col", "a", -1, 0.0),
            ]
        )
        assert space.size() == 2
        assert space.chain_specs[0].name == "c"

    def test_empty_space_single_point(self):
        assert ParameterSpace([]).points_list() == [{}]

    def test_duplicate_names_rejected(self):
        with pytest.raises(JigsawError):
            ParameterSpace(
                [
                    RangeParameter("a", 0.0, 1.0, 1.0),
                    SetParameter("a", (1.0,)),
                ]
            )

    def test_neighbors_interior(self):
        space = self.space()
        neighbors = space.neighbors({"a": 1.0, "b": 10.0}, "a")
        values = sorted(n["a"] for n in neighbors)
        assert values == [0.0, 2.0]

    def test_neighbors_edge(self):
        space = self.space()
        neighbors = space.neighbors({"a": 0.0, "b": 10.0}, "a")
        assert [n["a"] for n in neighbors] == [1.0]

    def test_neighbors_preserve_other_coordinates(self):
        space = self.space()
        neighbors = space.neighbors({"a": 1.0, "b": 20.0}, "a")
        assert all(n["b"] == 20.0 for n in neighbors)

    def test_neighbors_unknown_parameter(self):
        with pytest.raises(JigsawError):
            self.space().neighbors({"a": 0.0, "b": 10.0}, "z")

    def test_neighbors_value_not_in_domain(self):
        with pytest.raises(JigsawError):
            self.space().neighbors({"a": 0.5, "b": 10.0}, "a")
