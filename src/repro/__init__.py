"""Jigsaw: efficient optimization over uncertain enterprise data.

A from-scratch Python reproduction of Kennedy & Nath, SIGMOD 2011.  The
library provides:

* :mod:`repro.core` — fingerprints of stochastic black-box functions, mapping
  families, basis-distribution reuse, indexed matching, Markovian jumps, and
  the OPTIMIZE selector;
* :mod:`repro.blackbox` — the stochastic black-box protocol and the paper's
  Figure 6 model library;
* :mod:`repro.probdb` — an MCDB-style Monte Carlo probabilistic database
  substrate;
* :mod:`repro.lang` — the Jigsaw SQL dialect (DECLARE PARAMETER / SELECT /
  OPTIMIZE / GRAPH);
* :mod:`repro.scenario` — parameter spaces and batch scenario runners;
* :mod:`repro.interactive` — the online what-if engine (Fuzzy Prophet);
* :mod:`repro.api` — the unified session facade: typed
  estimate/match/refine requests over basis-store reuse state, one
  warm-start surface for every entry point;
* :mod:`repro.serve` — the serving daemon: one warm mmap-loaded
  snapshot answering concurrent clients over a socket, bitwise equal to
  in-process answers;
* :mod:`repro.bench` — reproduction runners for every evaluation figure.

Quickstart::

    from repro import compile_query, ScenarioRunner
    from repro.blackbox import default_registry

    bound = compile_query(QUERY_TEXT, default_registry())
    runner = ScenarioRunner(bound.scenario, samples_per_point=200)
    result = runner.run()
    answer = result.optimize(bound.selector)

Warm-start and serving::

    from repro import Session

    runner.save_stores("snapshots/demand")        # or session.save(...)
    session = Session.open("snapshots/demand")    # zero-copy mmap
    response = session.estimate(EstimateRequest(fingerprint=probe))
    # over the wire instead: python -m repro serve --store snapshots/demand
"""

from repro.api import (
    EstimateRequest,
    EstimateResponse,
    MatchRequest,
    MatchResponse,
    RefineRequest,
    RefineResponse,
    Session,
)
from repro.core import (
    AffineMapping,
    BasisStore,
    Constraint,
    Estimator,
    Fingerprint,
    LinearMappingFamily,
    MarkovJumpRunner,
    MetricSet,
    NaiveExplorer,
    NaiveMarkovRunner,
    Objective,
    ParallelExplorer,
    ParameterExplorer,
    SeedBank,
    Selector,
)
from repro.lang import compile_query
from repro.scenario import (
    ChainParameter,
    ParameterSpace,
    RangeParameter,
    Scenario,
    ScenarioRunner,
    SetParameter,
)

__version__ = "1.0.0"

__all__ = [
    "AffineMapping",
    "BasisStore",
    "Constraint",
    "Estimator",
    "EstimateRequest",
    "EstimateResponse",
    "Fingerprint",
    "MatchRequest",
    "MatchResponse",
    "RefineRequest",
    "RefineResponse",
    "Session",
    "LinearMappingFamily",
    "MarkovJumpRunner",
    "MetricSet",
    "NaiveExplorer",
    "NaiveMarkovRunner",
    "Objective",
    "ParallelExplorer",
    "ParameterExplorer",
    "SeedBank",
    "Selector",
    "compile_query",
    "ChainParameter",
    "ParameterSpace",
    "RangeParameter",
    "Scenario",
    "ScenarioRunner",
    "SetParameter",
    "__version__",
]
