"""The MarkovStep black box (paper Figure 6 and section 4).

"A simple Markovian process simulating the behavior of Demand with a
Markovian dependency introduced between feature release and the prior date's
demand."

The chain's per-instance state is the feature release week (initially in the
future / "not yet released", encoded as the sentinel ``pending_release``).
At each step (week), demand is drawn from the Demand model conditioned on the
current release state; if demand crosses ``release_threshold`` while the
feature is unreleased, management releases it at that week.  Markovian
dependencies are therefore *infrequent*: exactly one discontinuity per
trajectory, surrounded by long regions where a state-frozen estimator is
valid — the structure the Markov-jump algorithm (Algorithm 4) exploits.
"""

from __future__ import annotations

from repro.blackbox.base import MarkovModel
from repro.blackbox.demand import DemandModel


class MarkovStepModel(MarkovModel):
    """Demand process whose feature-release week depends on past demand.

    State encoding: the release week if released, else ``pending_release``
    (a large sentinel meaning "not released yet").  The observable output is
    the demand drawn for the step.
    """

    name = "MarkovStep"

    def __init__(
        self,
        release_threshold: float = 30.0,
        pending_release: float = 1.0e9,
        demand: DemandModel = None,
    ):
        super().__init__()
        self.release_threshold = release_threshold
        self.pending_release = pending_release
        self.demand = demand if demand is not None else DemandModel()

    def initial_state(self) -> float:
        return self.pending_release

    def demand_at(self, state: float, step_index: int, seed: int) -> float:
        """Demand for the step given the current release state."""
        return self.demand.sample(
            {"current_week": float(step_index), "feature_release": state},
            seed,
        )

    def _step(self, state: float, step_index: int, seed: int) -> float:
        demand_value = self.demand_at(state, step_index, seed)
        released = state < self.pending_release
        if not released and demand_value > self.release_threshold:
            return float(step_index)
        return state

    def output(self, state: float, step_index: int) -> float:
        """Observable: the release week driving downstream demand.

        The jump evaluator compares outputs via fingerprints; observing the
        state directly (rather than the noisy demand draw) mirrors the
        paper's release-week chain in Figure 5.
        """
        return state


class DemandObservedMarkovStep(MarkovStepModel):
    """MarkovStep variant whose observable is the demand draw itself.

    Exercises the harder case where the fingerprinted quantity is stochastic
    at every step (demand), not just at discontinuities; the demand for a
    step is re-derived deterministically from (state, step, seed).
    """

    name = "MarkovStepDemand"

    def observed_demand(self, state: float, step_index: int, seed: int) -> float:
        return self.demand_at(state, step_index, seed)
