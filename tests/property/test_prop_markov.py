"""Property-based tests for Markov-jump invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blackbox.base import MarkovModel
from repro.blackbox.markov_branch import MarkovBranchModel
from repro.core.markov import MarkovJumpRunner, NaiveMarkovRunner
from repro.core.seeds import SeedBank


class UniformDrift(MarkovModel):
    name = "UniformDrift"

    def __init__(self, rate):
        super().__init__()
        self.rate = rate

    def initial_state(self):
        return 0.0

    def _step(self, state, step_index, seed):
        return state + self.rate


class GlobalStaircase(MarkovModel):
    """Jumps shared by all instances at arbitrary steps."""

    name = "GlobalStaircase"

    def __init__(self, jump_steps):
        super().__init__()
        self.jump_steps = set(jump_steps)

    def initial_state(self):
        return 0.0

    def _step(self, state, step_index, seed):
        return state + (7.0 if step_index in self.jump_steps else 0.0)


class TestDriftAbsorption:
    @given(
        rate=st.floats(min_value=-10.0, max_value=10.0),
        steps=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_jump_equals_naive_for_uniform_drift(self, rate, steps):
        naive = NaiveMarkovRunner(UniformDrift(rate), instance_count=12).run(
            steps
        )
        jump = MarkovJumpRunner(
            UniformDrift(rate), instance_count=12, fingerprint_size=4
        ).run(steps)
        np.testing.assert_allclose(
            jump.states, naive.states, rtol=1e-9, atol=1e-9
        )

    @given(
        jump_steps=st.sets(
            st.integers(min_value=0, max_value=39), max_size=6
        ),
        steps=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_staircase_exact(self, jump_steps, steps):
        naive = NaiveMarkovRunner(
            GlobalStaircase(jump_steps), instance_count=9
        ).run(steps)
        jump = MarkovJumpRunner(
            GlobalStaircase(jump_steps), instance_count=9, fingerprint_size=3
        ).run(steps)
        np.testing.assert_allclose(jump.states, naive.states)


class TestFingerprintInstancesExact:
    @given(
        branching=st.floats(min_value=0.0, max_value=0.3),
        master=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_first_m_instances_match_naive(self, branching, master):
        bank = SeedBank(master)
        m = 6
        naive = NaiveMarkovRunner(
            MarkovBranchModel(branching=branching),
            instance_count=20,
            seed_bank=bank,
        ).run(30)
        jump = MarkovJumpRunner(
            MarkovBranchModel(branching=branching),
            instance_count=20,
            fingerprint_size=m,
            seed_bank=bank,
        ).run(30)
        np.testing.assert_allclose(jump.states[:m], naive.states[:m])


class TestAccounting:
    @given(steps=st.integers(min_value=1, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_jump_plus_full_covers_target(self, steps):
        result = MarkovJumpRunner(
            UniformDrift(1.0), instance_count=10, fingerprint_size=3
        ).run(steps)
        assert result.jumped_steps + result.full_steps == steps

    @given(steps=st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_naive_invocations_exact(self, steps):
        result = NaiveMarkovRunner(UniformDrift(1.0), instance_count=8).run(
            steps
        )
        assert result.step_invocations == 8 * steps
