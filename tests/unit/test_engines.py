"""Unit tests for the Figure 7 prototype engines."""


from repro.bench.engines import CoreEngine, WrapperEngine, default_query_for
from repro.bench.workloads import (
    capacity_workload,
    demand_workload,
    user_selection_workload,
)
from repro.blackbox import DemandModel, UserSelectionModel
from repro.core.seeds import SeedBank


class TestDefaultQuery:
    def test_declares_each_parameter(self):
        box = DemandModel()
        query = default_query_for(box)
        assert "@current_week" in query
        assert "@feature_release" in query
        assert "Demand(" in query


class TestEnginesAgree:
    """Both engines must compute identical estimates for the same seeds —
    the prototypes differ in cost, never in answer (paper section 6.1)."""

    def test_demand_estimates_match(self):
        bank = SeedBank(13)
        box = DemandModel()
        point = {"current_week": 6.0, "feature_release": 50.0}
        core = CoreEngine(box, samples_per_point=30, seed_bank=bank)
        wrapper = WrapperEngine(
            box,
            default_query_for(box),
            samples_per_point=30,
            seed_bank=bank,
        )
        core_run = core.evaluate_point(point)
        wrapper_run = wrapper.evaluate_point(point)
        assert core_run.metrics.approx_equals(
            wrapper_run.metrics, rel_tol=1e-9
        )
        assert core_run.samples_drawn == wrapper_run.samples_drawn == 30

    def test_user_selection_estimates_match(self):
        bank = SeedBank(13)
        box = UserSelectionModel(user_count=20)
        point = {"current_week": 2.0}
        core = CoreEngine(box, samples_per_point=10, seed_bank=bank)
        wrapper = WrapperEngine(
            box,
            default_query_for(box),
            samples_per_point=10,
            seed_bank=bank,
        )
        assert core.evaluate_point(point).metrics.approx_equals(
            wrapper.evaluate_point(point).metrics, rel_tol=1e-6
        )


class TestWorkloads:
    def test_demand_space_size(self):
        workload = demand_workload(weeks=10, features=(1.0, 2.0))
        assert len(workload.points) == 11 * 2

    def test_capacity_space_size(self):
        workload = capacity_workload(weeks=8, purchase_step=4)
        assert len(workload.points) == 9 * 3 * 3

    def test_user_selection_space(self):
        workload = user_selection_workload(weeks=4, user_count=10)
        assert len(workload.points) == 5
        assert workload.box.user_count == 10

    def test_simulation_callable(self):
        workload = demand_workload(weeks=2, features=(1.0,))
        simulation = workload.simulation()
        value = simulation(workload.points[0], 5)
        assert isinstance(value, float)
