"""Task and exploration heuristics for the online engine (paper section 5).

Algorithm 5 delegates two choices to heuristics:

* ``TaskHeuristic`` — whether the next tick refines the focused point's
  basis, validates its mapping with duplicate samples, or explores a nearby
  point the user is likely to visit;
* ``ExploreHeuristic`` — which nearby point to prefetch (adjacent values in
  the discrete parameter space).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.scenario.space import ParameterSpace

TASK_REFINEMENT = "refinement"
TASK_VALIDATION = "validation"
TASK_EXPLORATION = "exploration"

TASKS = (TASK_REFINEMENT, TASK_VALIDATION, TASK_EXPLORATION)


class RoundRobinTaskHeuristic:
    """Cycle through refinement, validation, exploration in a fixed ratio.

    Refinement dominates (it directly improves what the user is looking at);
    validation and exploration interleave at the configured cadence.
    """

    def __init__(self, refinement_weight: int = 2):
        if refinement_weight < 1:
            raise ValueError("refinement_weight must be positive")
        pattern = [TASK_REFINEMENT] * refinement_weight
        pattern += [TASK_VALIDATION, TASK_EXPLORATION]
        self._cycle = itertools.cycle(pattern)

    def next_task(self, focused_point: Dict[str, float]) -> str:
        return next(self._cycle)


class AdjacentExploreHeuristic:
    """Prefetch points adjacent to the focus along each parameter axis."""

    def __init__(self, space: ParameterSpace):
        self.space = space
        self._axis_cycle = itertools.cycle(space.names) if space.names else None

    def next_point(
        self, focused_point: Dict[str, float]
    ) -> Optional[Dict[str, float]]:
        if self._axis_cycle is None:
            return None
        for _ in range(len(self.space.names)):
            axis = next(self._axis_cycle)
            neighbors = self.space.neighbors(focused_point, axis)
            if neighbors:
                # Prefer the forward neighbor (users usually scrub onward).
                return neighbors[-1]
        return None
