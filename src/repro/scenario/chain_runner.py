"""Executing scenarios with CHAIN parameters (paper section 4, Figure 5).

A CHAIN parameter turns the scenario into a Markov process over its driver
parameter: the chain's value while evaluating driver step ``t`` is the
query's ``source_column`` output at step ``t + offset`` (offset −1 in the
paper's release-week example).  :class:`ScenarioMarkovAdapter` exposes that
process through the :class:`~repro.blackbox.base.MarkovModel` protocol so
both the naive stepper and the Markov-jump evaluator run it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.blackbox.base import MarkovModel
from repro.core.estimator import Estimator, MetricSet
from repro.core.mapping import MappingFamily
from repro.core.markov import (
    MarkovJumpRunner,
    MarkovRunResult,
    NaiveMarkovRunner,
)
from repro.core.seeds import SeedBank
from repro.errors import MarkovError
from repro.scenario.parameter import ChainParameter
from repro.scenario.scenario import Scenario


class ScenarioMarkovAdapter(MarkovModel):
    """One scenario + one CHAIN parameter, viewed as a Markov process.

    The per-instance state is the chain parameter's value; stepping the
    chain evaluates the scenario's query at the next driver step with the
    chain parameter bound to the current state, then reads the chain's
    source column out of the query result.
    """

    def __init__(
        self,
        scenario: Scenario,
        chain: ChainParameter,
        fixed_params: Optional[Mapping[str, float]] = None,
    ):
        super().__init__()
        if chain.source_column not in scenario.output_columns:
            raise MarkovError(
                f"chain @{chain.name} reads column "
                f"{chain.source_column!r}, which the scenario does not "
                f"produce ({list(scenario.output_columns)})"
            )
        if chain.driver_offset > 0:
            raise MarkovError(
                "chain offsets must be non-positive (a step may only depend "
                "on present or past steps)"
            )
        self.scenario = scenario
        self.chain = chain
        self.fixed_params = dict(fixed_params or {})
        self.name = f"{scenario.name}:{chain.name}"

    def initial_state(self) -> float:
        return float(self.chain.initial_value)

    def _step(self, state: float, step_index: int, seed: int) -> float:
        params: Dict[str, float] = dict(self.fixed_params)
        params[self.chain.driver] = float(step_index)
        params[self.chain.name] = float(state)
        row = self.scenario.simulate(params, seed)
        return float(row[self.chain.source_column])

    def observe(
        self, state: float, step_index: int, seed: int, column: str
    ) -> float:
        """Any output column at a step, conditioned on the chain state."""
        params: Dict[str, float] = dict(self.fixed_params)
        params[self.chain.driver] = float(step_index)
        params[self.chain.name] = float(state)
        return self.scenario.simulate(params, seed)[column]


@dataclass
class ChainRunResult:
    """Final chain states plus derived per-column metrics."""

    markov: MarkovRunResult
    final_metrics: MetricSet


class ChainScenarioRunner:
    """Run a chained scenario to a target driver step, naive or jumping."""

    def __init__(
        self,
        scenario: Scenario,
        instance_count: int = 1000,
        fingerprint_size: int = 10,
        seed_bank: Optional[SeedBank] = None,
        estimator: Optional[Estimator] = None,
        mapping_family: Optional[MappingFamily] = None,
        fixed_params: Optional[Mapping[str, float]] = None,
    ):
        chains = scenario.chain_parameters
        if len(chains) != 1:
            raise MarkovError(
                f"chained execution requires exactly one CHAIN parameter; "
                f"scenario declares {len(chains)}"
            )
        self.scenario = scenario
        self.adapter = ScenarioMarkovAdapter(
            scenario, chains[0], fixed_params=fixed_params
        )
        self.instance_count = instance_count
        self.fingerprint_size = fingerprint_size
        self.seed_bank = seed_bank
        self.estimator = estimator or Estimator()
        self.mapping_family = mapping_family

    def run_naive(self, target_steps: int) -> ChainRunResult:
        runner = NaiveMarkovRunner(
            self.adapter,
            instance_count=self.instance_count,
            seed_bank=self.seed_bank,
        )
        return self._finish(runner.run(target_steps))

    def run_jigsaw(self, target_steps: int) -> ChainRunResult:
        kwargs = {}
        if self.mapping_family is not None:
            kwargs["mapping_family"] = self.mapping_family
        runner = MarkovJumpRunner(
            self.adapter,
            instance_count=self.instance_count,
            fingerprint_size=self.fingerprint_size,
            seed_bank=self.seed_bank,
            **kwargs,
        )
        return self._finish(runner.run(target_steps))

    def _finish(self, markov: MarkovRunResult) -> ChainRunResult:
        metrics = self.estimator.estimate(np.asarray(markov.states))
        return ChainRunResult(markov=markov, final_metrics=metrics)
