"""Sharded parallel sweeps with mergeable basis stores.

PR 1 made one process as fast as NumPy allows; this module scales a sweep
across cores.  The key observation (Kennedy & Nath's fingerprint reuse) is
that a sweep is *embarrassingly shardable*: each point's fingerprint rounds
are independent, and a missed reuse opportunity only ever costs duplicate
work — never correctness — so shard-local basis stores can speculate freely
and be reconciled afterwards.

The engine runs in two phases:

1. **Speculate** (parallel): the parameter space is split into contiguous
   shards, one fork-pool worker per shard.  Each worker runs a plain
   :class:`~repro.core.explorer.ParameterExplorer` over its shard with its
   own :class:`~repro.core.basis.BasisStore` and a fresh standard-draw
   cache, and ships back, per point, the fingerprint values plus — for
   points it fully simulated — the full sample vector.
2. **Replay-merge** (serial, cheap): the master replays the points in
   canonical space order against one merged store, re-probing every
   incoming fingerprint so cross-shard duplicate bases collapse into
   mappings.  A replay miss consumes the worker's precomputed samples; in
   the rare case a shard reused a point the canonical order simulates
   fully, the master re-runs that point's completion rounds itself.
   (:meth:`BasisStore.merge` / :meth:`FingerprintIndex.merge` apply the
   same collapse rule at store granularity — point order forgotten — for
   offline merging of independently built stores; the replay here works
   point-by-point because the bit-parity invariant needs the canonical
   visit order.)

Because simulations are deterministic under the shared seed bank, the
replay *is* the serial algorithm with sampling outsourced: per-point
metrics, reuse decisions, basis ids, mappings, and counters are all
bit-identical to the serial explorer for every worker count.  (The engine
therefore guarantees more than the documented invariant — estimates may
never differ; decisions happen not to either.)  Only the *shard-side* work
varies with the shard count; :class:`ParallelStats` accounts for it.

Both phases run on the columnar match engine: shard stores and the merged
replay store validate each probe's candidates through the vectorized
``find_matrix`` kernels (with contiguous fingerprint/key matrices grown
incrementally as bases are adopted), so sharding and columnar matching
compose — and because the columnar path is bit-identical to the scalar
loop, the replay-merge parity invariant is untouched.  Offline store
reconciliation (:meth:`BasisStore.merge`) adopts a shard's columnar
matrices with one concatenate per fingerprint size in verbatim mode and
re-probes incoming bases through the same columnar engine otherwise.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import threading
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.blackbox import draws
from repro.blackbox.base import Params
from repro.core.adaptive import AdaptiveBudget
from repro.core.basis import BasisStore
from repro.core.estimator import Estimator
from repro.core.explorer import (
    ExplorationResult,
    ExplorerStats,
    ParameterExplorer,
    Simulation,
    make_batch_simulation,
)
from repro.core.mapping import MappingFamily
from repro.core.seeds import DEFAULT_SEED_BANK, SeedBank, SeedSlice
from repro.core.supervise import (
    ShardSupervisor,
    SupervisionPolicy,
    SupervisionReport,
)

# ---------------------------------------------------------------------------
# Fork fan-out
#
# Workers are forked, not spawned: the shard context (simulation callable,
# store factory, scenario object, ...) is handed over through inherited
# memory instead of pickling, so closures and bound methods parallelize as
# well as module-level functions.  Only the shard *results* cross the wire.
#
# Execution routes through repro.core.supervise: each shard attempt is an
# individually submitted future the supervisor can deadline, retry on a
# rebuilt pool after a worker death, or — once retries exhaust — recompute
# in-process, so one dead or hung worker no longer costs the whole sweep.
# Shards are deterministic under the shared seed bank, so none of that
# recovery can change results.

#: Token -> (context, runner).  Entries are registered *before* the pool
#: forks, so every child inherits the full dict; the token each worker is
#: handed picks its own sweep's entry, which is what lets two sweeps fork
#: concurrently (the old design had a single context slot and had to hold
#: its lock for the pool's entire lifetime, fully serializing them).
_SHARD_CONTEXTS: Dict[int, Tuple[Any, Callable[[Any, int], Any]]] = {}
#: Guards only the registry mutations, never held across a fork or a
#: pool's lifetime.  Forked children must not touch it at all — another
#: parent thread could have held it at fork time, which would deadlock
#: the child — so ``_invoke_shard`` reads the dict with a bare ``get``
#: (atomic under the GIL, and the fork itself happens while the forking
#: thread holds the GIL, so children see a consistent dict).
_SHARD_CONTEXT_LOCK = threading.Lock()
_SHARD_TOKENS = itertools.count()
_IN_WORKER = False


def default_worker_count() -> int:
    """Worker count when the caller does not choose one (all cores)."""
    return os.cpu_count() or 1


def fork_available() -> bool:
    """Whether fork-based pools exist on this platform (Linux: yes)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _worker_initializer(backend_name: Optional[str] = None) -> None:
    global _IN_WORKER
    _IN_WORKER = True
    draws.initialize_worker(backend=backend_name)


def _inheritable_backend_name() -> Optional[str]:
    """The parent's active backend name, if a forked worker can rebuild it.

    Workers re-select the backend by registry name so each shard carries
    fresh per-instance verification state.  An unregistered instance
    (e.g. an injected test double) has no name to rebuild from — return
    ``None`` and let fork inheritance of the module-level active backend
    carry it instead.
    """
    from repro.core import backend as backend_mod

    name = backend_mod.active_backend().name
    if backend_mod.backend_available(name):
        return name
    return None


def _invoke_shard(token: int, index: int) -> Any:
    entry = _SHARD_CONTEXTS.get(token)
    assert entry is not None, "shard context lost across fork"
    context, runner = entry
    return runner(context, index)


class _ForkShardPool:
    """Supervisable pool over a fork-context ``ProcessPoolExecutor``.

    Workers resolve their sweep's context through the inherited registry
    by token.  ``abandon`` terminates the worker processes outright —
    it is the supervisor's remedy for a broken pool or a worker stuck
    past its deadline, where a clean shutdown would block forever.
    """

    def __init__(self, token: int, workers: int):
        self._token = token
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("fork"),
            initializer=_worker_initializer,
            initargs=(_inheritable_backend_name(),),
        )

    def submit(self, index: int):
        return self._executor.submit(_invoke_shard, self._token, index)

    def abandon(self) -> None:
        processes = list(getattr(self._executor, "_processes", {}).values())
        for process in processes:
            process.terminate()
        self._executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            process.join(timeout=1.0)

    def close(self) -> None:
        self._executor.shutdown(wait=True)


def fork_map(
    runner: Callable[[Any, int], Any],
    context: Any,
    shard_count: int,
    workers: int,
    *,
    policy: Optional[SupervisionPolicy] = None,
    indices: Optional[Iterable[int]] = None,
    on_shard_complete: Optional[Callable[[int, Any], None]] = None,
    report_sink: Optional[Callable[[SupervisionReport], None]] = None,
) -> List[Any]:
    """Run ``runner(context, i)`` for every shard, forking when it helps.

    Falls back to in-process execution — same code path, same results —
    when one worker suffices, fork is unavailable (gated, not emulated
    with spawn: spawn would require pickling arbitrary simulations), or
    we are already inside a worker (no nested pools).

    Execution is supervised (see :mod:`repro.core.supervise`): ``policy``
    sets retry/timeout/degrade behavior (default
    :data:`~repro.core.supervise.DEFAULT_POLICY`), ``indices`` restricts
    the run to a subset of ``range(shard_count)`` (checkpoint resumes
    recompute only the remainder; results come back in ``indices`` order),
    ``on_shard_complete(index, result)`` fires as each shard's result is
    accepted (checkpoint writers hook in here), and ``report_sink``
    receives the :class:`~repro.core.supervise.SupervisionReport` after
    the run.
    """
    if indices is None:
        indices = range(shard_count)
    indices = [int(i) for i in indices]
    workers = min(int(workers), len(indices)) if indices else 0
    pooled = workers > 1 and not _IN_WORKER and fork_available()
    token: Optional[int] = None
    pool_factory = None
    if pooled:
        token = next(_SHARD_TOKENS)
        with _SHARD_CONTEXT_LOCK:
            _SHARD_CONTEXTS[token] = (context, runner)

        def pool_factory(token=token, workers=workers):
            return _ForkShardPool(token, workers)

    supervisor = ShardSupervisor(
        runner,
        context,
        indices,
        policy,
        pool_factory=pool_factory,
        on_shard_complete=on_shard_complete,
    )
    try:
        results = supervisor.run()
    finally:
        if token is not None:
            with _SHARD_CONTEXT_LOCK:
                _SHARD_CONTEXTS.pop(token, None)
    if report_sink is not None:
        report_sink(supervisor.report)
    return [results[index] for index in indices]


def shard_slices(total: int, shard_count: int) -> List[slice]:
    """Split ``range(total)`` into contiguous, balanced slices.

    Contiguity matters: replay order is concatenation order, so contiguous
    shards keep every shard's internal visit order identical to the serial
    sweep's (shard 0's speculation is exactly the serial prefix).
    """
    shard_count = max(1, min(shard_count, total)) if total else 1
    bounds = np.linspace(0, total, shard_count + 1).astype(int)
    return [
        slice(int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]


# ---------------------------------------------------------------------------
# Parallel explorer


@dataclass
class ParallelStats:
    """Shard-side work accounting (what the canonical stats hide).

    ``ExplorationResult.stats`` reports the serial-equivalent counters so
    estimates and bench counters are invariant to the shard count; this
    records what the shards actually did, including the speculation that
    the merge collapsed.
    """

    workers: int = 0
    shard_sizes: Tuple[int, ...] = ()
    #: Samples actually drawn inside shards (>= stats.samples_drawn).  For
    #: scenario sweeps this counts Monte Carlo rounds (one round covers all
    #: output columns), matching ``RunnerStats.rounds_executed``.
    shard_samples_drawn: int = 0
    #: Shard-created bases that collapsed into mappings during the merge.
    bases_collapsed: int = 0
    #: Points the canonical replay had to resimulate because their shard
    #: reused them while the canonical order demanded a full simulation.
    points_resimulated: int = 0
    #: Per-shard work counters (ExplorerStats or RunnerStats instances).
    shard_stats: List[object] = field(default_factory=list)
    #: Shards whose outcomes were consumed from a resumable checkpoint
    #: instead of being recomputed this run.
    shards_resumed: int = 0
    #: The :class:`~repro.core.supervise.SupervisionReport` for the shard
    #: fan-out (None when every shard came from a checkpoint).
    supervision: Optional[object] = None


@dataclass
class _ShardPointRecord:
    """One point's shipped outcome: fingerprint, and samples on a miss.

    ``samples`` carries the shard's *complete* draw for the point — under
    an adaptive budget its length IS the per-point sample count the shard
    recorded, and the canonical replay consumes it block-by-block (the
    adaptive schedule is a pure function of the sample values, so the
    replay requests exactly these values back in exactly these blocks).
    """

    fingerprint_values: np.ndarray
    samples: Optional[np.ndarray]


@dataclass
class _ShardOutcome:
    records: List[_ShardPointRecord]
    stats: ExplorerStats


@dataclass
class _ExplorerShardContext:
    """Inherited-by-fork description of one sweep's shard jobs."""

    simulation: Simulation
    shards: List[List[Dict[str, float]]]
    samples_per_point: int
    fingerprint_size: int
    fingerprint_slice: SeedSlice
    estimator: Estimator
    store_factory: Callable[[], BasisStore]
    adaptive: Optional[AdaptiveBudget] = None


def _run_explorer_shard(
    context: _ExplorerShardContext, index: int
) -> _ShardOutcome:
    explorer = ParameterExplorer(
        context.simulation,
        samples_per_point=context.samples_per_point,
        fingerprint_size=context.fingerprint_size,
        basis_store=context.store_factory(),
        seed_bank=context.fingerprint_slice.bank,
        estimator=context.estimator,
        adaptive=context.adaptive,
    )
    stats = ExplorerStats()
    records = []
    # One record per *visited* point, in shard order — explore_point per
    # point rather than run(), whose result dict would collapse duplicate
    # parameter points and misalign the replay.
    for params in context.shards[index]:
        point = explorer.explore_point(params)
        stats.points_total += 1
        stats.fingerprint_samples += context.fingerprint_size
        if point.reused:
            stats.points_reused += 1
        else:
            stats.bases_created += 1
            stats.full_samples += (
                point.samples_drawn - context.fingerprint_size
            )
        samples = (
            None
            if point.reused
            else explorer.store.get(point.basis_id).samples
        )
        records.append(
            _ShardPointRecord(point.fingerprint.array, samples)
        )
    return _ShardOutcome(records, stats)


def space_digest(points: List[Dict[str, float]]) -> str:
    """Order-sensitive digest of a parameter space (bitwise on floats).

    Checkpoint configs carry this so a resume against a *different* space
    (or the same points in a different order — replay order is sacred)
    refuses instead of silently mixing sweeps.
    """
    canonical = json.dumps(
        [
            [[str(k), float(v).hex()] for k, v in sorted(p.items())]
            for p in points
        ],
        separators=(",", ":"),
    )
    return f"{zlib.crc32(canonical.encode()):08x}"


def _encode_explorer_outcome(
    outcome: _ShardOutcome,
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Checkpoint encoding of one shard outcome (meta dict + arrays)."""
    arrays: Dict[str, np.ndarray] = {}
    records = []
    for position, record in enumerate(outcome.records):
        arrays[f"fp{position}"] = np.asarray(
            record.fingerprint_values, dtype=np.float64
        )
        records.append({"samples": record.samples is not None})
        if record.samples is not None:
            arrays[f"s{position}"] = np.asarray(
                record.samples, dtype=np.float64
            )
    stats = outcome.stats
    meta = {
        "records": records,
        "stats": {
            "points_total": int(stats.points_total),
            "points_reused": int(stats.points_reused),
            "bases_created": int(stats.bases_created),
            "fingerprint_samples": int(stats.fingerprint_samples),
            "full_samples": int(stats.full_samples),
        },
    }
    return meta, arrays


def _decode_explorer_outcome(
    meta: dict, arrays: Dict[str, np.ndarray]
) -> _ShardOutcome:
    records = []
    for position, entry in enumerate(meta["records"]):
        samples = (
            np.asarray(arrays[f"s{position}"]) if entry["samples"] else None
        )
        records.append(
            _ShardPointRecord(np.asarray(arrays[f"fp{position}"]), samples)
        )
    stats = ExplorerStats(
        **{key: int(value) for key, value in meta["stats"].items()}
    )
    return _ShardOutcome(records, stats)


class _PlaybackSimulation:
    """Replays worker-recorded sample vectors into a serial explorer.

    The merge phase runs a plain :class:`ParameterExplorer` over the full
    space — the literal serial algorithm, stats and all — with this object
    standing in for the simulation: fingerprint rounds return the shard's
    recorded values, completion rounds return the shard's recorded samples
    (consumed cursor-wise, so an adaptive budget's multiple completion
    blocks replay as the exact slices the shard drew), and only when a
    shard speculatively reused a point the canonical order must simulate
    does it fall through to the real batch simulation.  Calls are
    disambiguated by seed-array identity (the explorer passes its one
    fingerprint-seed array for every fingerprint call), so the protocol is
    safe even when both phases draw equally many rounds.
    """

    def __init__(
        self,
        records: List[_ShardPointRecord],
        batch_simulation,
    ):
        self._records = records
        self._batch_simulation = batch_simulation
        self._fingerprint_seeds: Optional[np.ndarray] = None
        self._index = -1
        self._cursor = 0
        self._resimulated_index = -1
        self.points_resimulated = 0

    def bind(self, fingerprint_seeds: np.ndarray) -> None:
        self._fingerprint_seeds = fingerprint_seeds

    def sample_batch(self, params: Params, seeds: np.ndarray) -> np.ndarray:
        if seeds is self._fingerprint_seeds:
            self._index += 1
            record = self._records[self._index]
            self._cursor = len(record.fingerprint_values)
            return record.fingerprint_values
        record = self._records[self._index]
        if record.samples is not None:
            start = self._cursor
            self._cursor += len(seeds)
            return record.samples[start:self._cursor]
        if self._resimulated_index != self._index:
            # Count resimulated *points*, not completion calls: under an
            # adaptive budget one resimulated point draws several blocks.
            self._resimulated_index = self._index
            self.points_resimulated += 1
        return self._batch_simulation(params, seeds)


class ParallelExplorer:
    """A :class:`ParameterExplorer` sharded across a pool of workers.

    Same ``run(space) -> ExplorationResult`` contract; per-point metrics
    (and in this implementation even reuse decisions and counters) are
    bit-identical to the serial explorer for any ``workers``.  The merged
    basis store is available as ``store`` afterwards, exactly like the
    serial explorer's.

    ``store_factory`` builds each worker's shard-local store *and* the
    merged store; by default it mirrors the serial constructor
    (``mapping_family`` + ``index_strategy`` + shared estimator).

    ``basis_store`` warm-starts the sweep: a caller-provided (typically
    snapshot-loaded, see :mod:`repro.core.persist`) store becomes the
    canonical replay/merge store, exactly as passing ``basis_store`` to
    the serial explorer would.  Shard workers still speculate against
    fresh cold stores — speculation only ever costs duplicate samples,
    and the canonical replay probes the warm store, so per-point metrics
    and decisions stay bit-identical to a serial warm sweep for any
    worker count (a point a shard simulated but the warm store covers is
    simply reused, its shipped samples dropped; the rare converse falls
    through to a real resimulation, as ever).
    """

    def __init__(
        self,
        simulation: Simulation,
        workers: Optional[int] = None,
        samples_per_point: int = 1000,
        fingerprint_size: int = 10,
        index_strategy: str = "normalization",
        mapping_family: Optional[MappingFamily] = None,
        seed_bank: Optional[SeedBank] = None,
        estimator: Optional[Estimator] = None,
        store_factory: Optional[Callable[[], BasisStore]] = None,
        adaptive: Optional[AdaptiveBudget] = None,
        basis_store: Optional[BasisStore] = None,
        supervision: Optional[SupervisionPolicy] = None,
        checkpoint: Optional[str] = None,
    ):
        if fingerprint_size < 1:
            raise ValueError("fingerprint_size must be at least 1")
        if samples_per_point < fingerprint_size:
            raise ValueError(
                "samples_per_point must be >= fingerprint_size (fingerprint "
                "rounds double as the first simulation rounds)"
            )
        self.workers = (
            default_worker_count() if workers is None else int(workers)
        )
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self.simulation = simulation
        self._batch_simulation = make_batch_simulation(simulation)
        self.samples_per_point = samples_per_point
        self.fingerprint_size = fingerprint_size
        self.seed_bank = seed_bank or DEFAULT_SEED_BANK
        self.estimator = estimator or Estimator()
        self.adaptive = adaptive
        if store_factory is None:

            def store_factory() -> BasisStore:
                return BasisStore(
                    mapping_family=mapping_family,
                    index_strategy=index_strategy,
                    estimator=self.estimator,
                )

        self._store_factory = store_factory
        # A repro.api.Session stands in for its store wherever a
        # basis_store is accepted (duck-typed: no core -> api import).
        if basis_store is not None and hasattr(
            basis_store, "resolve_basis_store"
        ):
            basis_store = basis_store.resolve_basis_store()
        # `is None`, not `or`: an empty warm store is falsy (len() == 0)
        # and must still win over the factory default.
        self.store = (
            basis_store if basis_store is not None else store_factory()
        )
        self._fingerprint_slice = self.seed_bank.slice(fingerprint_size)
        self.supervision = supervision
        self.checkpoint = checkpoint

    def _checkpoint_config(self, points, shards) -> dict:
        adaptive = None
        if self.adaptive is not None:
            budget = self.adaptive
            adaptive = {
                "rtol": float(budget.rtol).hex(),
                "atol": float(budget.atol).hex(),
                "confidence": float(budget.confidence).hex(),
                "max_samples": budget.max_samples,
                "min_samples": budget.min_samples,
                "method": budget.method,
            }
        return {
            "engine": "explorer",
            "space": space_digest(points),
            "shard_sizes": [len(shard) for shard in shards],
            "samples_per_point": int(self.samples_per_point),
            "fingerprint_size": int(self.fingerprint_size),
            "seed_master": int(self.seed_bank.master_seed),
            "adaptive": adaptive,
        }

    def run(self, space: Iterable[Params]) -> ExplorationResult:
        """Explore every point of ``space``: speculate in shards, then merge.

        With ``checkpoint`` set, completed-shard outcomes are persisted as
        they arrive and a restarted run consumes the valid records,
        recomputing only the remainder — determinism makes the merged
        result bit-identical to an uninterrupted run either way.
        """
        points = [dict(p) for p in space]
        slices = shard_slices(len(points), self.workers)
        shards = [points[s] for s in slices]
        context = _ExplorerShardContext(
            simulation=self.simulation,
            shards=shards,
            samples_per_point=self.samples_per_point,
            fingerprint_size=self.fingerprint_size,
            fingerprint_slice=self._fingerprint_slice,
            estimator=self.estimator,
            store_factory=self._store_factory,
            adaptive=self.adaptive,
        )
        loaded: Dict[int, _ShardOutcome] = {}
        on_complete = None
        if self.checkpoint is not None:
            from repro.core.persist import SweepCheckpoint

            store = SweepCheckpoint(
                self.checkpoint, self._checkpoint_config(points, shards)
            )
            loaded = {
                index: _decode_explorer_outcome(meta, arrays)
                for index, (meta, arrays) in store.load().items()
                if 0 <= index < len(shards)
            }

            def on_complete(index: int, outcome: _ShardOutcome) -> None:
                store.record(index, *_encode_explorer_outcome(outcome))

        remaining = [i for i in range(len(shards)) if i not in loaded]
        reports: List[SupervisionReport] = []
        by_index = dict(loaded)
        if remaining:
            computed = fork_map(
                _run_explorer_shard,
                context,
                len(shards),
                self.workers,
                policy=self.supervision,
                indices=remaining,
                on_shard_complete=on_complete,
                report_sink=reports.append,
            )
            by_index.update(zip(remaining, computed))
        outcomes = [by_index[index] for index in range(len(shards))]
        result = self._merge(points, outcomes)
        if result.parallel is not None:
            result.parallel.shards_resumed = len(loaded)
            result.parallel.supervision = reports[0] if reports else None
        return result

    def _merge(
        self,
        points: List[Dict[str, float]],
        outcomes: List[_ShardOutcome],
    ) -> ExplorationResult:
        """Replay the canonical sweep order against one merged store.

        Runs the *actual* serial explorer over the full space with a
        :class:`_PlaybackSimulation` as the simulation — so reuse
        decisions, per-point metrics, and counters are serial by
        construction, and cross-shard duplicate bases collapse exactly
        where a serial sweep would have reused them.
        """
        records = [
            record for outcome in outcomes for record in outcome.records
        ]
        playback = _PlaybackSimulation(records, self._batch_simulation)
        replay = ParameterExplorer(
            playback,
            samples_per_point=self.samples_per_point,
            fingerprint_size=self.fingerprint_size,
            basis_store=self.store,
            seed_bank=self.seed_bank,
            estimator=self.estimator,
            adaptive=self.adaptive,
        )
        playback.bind(replay._fingerprint_seeds)
        result = replay.run(points)
        parallel = ParallelStats(
            workers=self.workers,
            shard_sizes=tuple(len(o.records) for o in outcomes),
            shard_samples_drawn=sum(
                o.stats.samples_drawn for o in outcomes
            ),
            points_resimulated=playback.points_resimulated,
            shard_stats=[o.stats for o in outcomes],
        )
        shard_bases = sum(o.stats.bases_created for o in outcomes)
        adopted = result.stats.bases_created - parallel.points_resimulated
        parallel.bases_collapsed = shard_bases - adopted
        result.parallel = parallel
        return result
