"""The Jigsaw query language: lexer, parser, AST, and binder."""

from repro.lang.ast import Script
from repro.lang.binder import (
    Binder,
    BoundQuery,
    GraphSpec,
    bind_script,
    compile_query,
)
from repro.lang.lexer import Token, tokenize
from repro.lang.parser import Parser, parse_expression, parse_script
from repro.lang.unparse import (
    unparse_expression,
    unparse_script,
    unparse_statement,
)

__all__ = [
    "unparse_expression",
    "unparse_script",
    "unparse_statement",
    "Script",
    "Binder",
    "BoundQuery",
    "GraphSpec",
    "bind_script",
    "compile_query",
    "Token",
    "tokenize",
    "Parser",
    "parse_expression",
    "parse_script",
]
