"""Unit tests for fingerprints (paper section 3.1)."""

import pytest

from repro.core.fingerprint import (
    Fingerprint,
    compute_fingerprint,
    fingerprint_from_values,
    values_close,
)
from repro.core.seeds import SeedBank
from repro.errors import FingerprintError


class TestConstruction:
    def test_holds_values(self):
        fp = Fingerprint((1.0, 2.0, 3.0))
        assert fp.values == (1.0, 2.0, 3.0)
        assert fp.size == 3
        assert len(fp) == 3

    def test_indexing_and_iteration(self):
        fp = Fingerprint((5.0, 6.0))
        assert fp[0] == 5.0
        assert list(fp) == [5.0, 6.0]

    def test_empty_rejected(self):
        with pytest.raises(FingerprintError):
            Fingerprint(())

    def test_from_values_coerces_floats(self):
        fp = fingerprint_from_values([1, 2, 3])
        assert fp.values == (1.0, 2.0, 3.0)

    def test_repr_truncates(self):
        fp = Fingerprint(tuple(float(i) for i in range(10)))
        assert "..." in repr(fp)


class TestComputeFingerprint:
    def test_uses_first_m_seeds_in_order(self):
        bank = SeedBank(3)
        seen = []

        def sample(seed):
            seen.append(seed)
            return float(len(seen))

        fp = compute_fingerprint(sample, bank, 4)
        assert seen == bank.seeds(4)
        assert fp.values == (1.0, 2.0, 3.0, 4.0)

    def test_size_must_be_positive(self):
        with pytest.raises(FingerprintError):
            compute_fingerprint(lambda s: 0.0, SeedBank(3), 0)


class TestConstancy:
    def test_constant_detected(self):
        assert Fingerprint((2.0, 2.0, 2.0)).is_constant()

    def test_near_constant_within_tolerance(self):
        fp = Fingerprint((1.0, 1.0 + 1e-12, 1.0))
        assert fp.is_constant()

    def test_nonconstant_detected(self):
        assert not Fingerprint((1.0, 2.0)).is_constant()

    def test_first_distinct_pair(self):
        assert Fingerprint((1.0, 1.0, 5.0)).first_distinct_pair() == (0, 2)

    def test_first_distinct_pair_none_for_constant(self):
        assert Fingerprint((1.0, 1.0)).first_distinct_pair() is None


class TestNormalForm:
    def test_anchors_map_to_zero_and_one(self):
        form = Fingerprint((3.0, 7.0, 5.0)).normal_form()
        assert form[0] == 0.0
        assert form[1] == 1.0
        assert form[2] == pytest.approx(0.5)

    def test_affine_images_share_normal_form(self):
        base = Fingerprint((1.0, 4.0, 2.5, -1.0))
        mapped = Fingerprint(tuple(2.5 * v - 7.0 for v in base.values))
        assert base.normal_form() == mapped.normal_form()

    def test_negative_scale_images_share_normal_form(self):
        base = Fingerprint((1.0, 4.0, 2.5))
        flipped = Fingerprint(tuple(-3.0 * v + 1.0 for v in base.values))
        assert base.normal_form() == flipped.normal_form()

    def test_constant_normalizes_to_zeros(self):
        assert Fingerprint((9.0, 9.0)).normal_form() == (0.0, 0.0)

    def test_no_negative_zero_keys(self):
        form = Fingerprint((1.0, 2.0, 1.0)).normal_form()
        assert all(str(v) != "-0.0" for v in form)

    def test_distinct_shapes_differ(self):
        a = Fingerprint((0.0, 1.0, 0.5)).normal_form()
        b = Fingerprint((0.0, 1.0, 0.75)).normal_form()
        assert a != b


class TestSidOrder:
    def test_ascending_order(self):
        assert Fingerprint((3.0, 1.0, 2.0)).sid_order() == (1, 2, 0)

    def test_descending_order_is_reverse(self):
        fp = Fingerprint((3.0, 1.0, 2.0))
        assert fp.sid_order(descending=True) == tuple(
            reversed(fp.sid_order())
        )

    def test_ties_broken_by_index(self):
        assert Fingerprint((1.0, 1.0, 0.0)).sid_order() == (2, 0, 1)

    def test_invariant_under_increasing_affine_map(self):
        base = Fingerprint((3.0, 1.0, 2.0, 10.0))
        mapped = Fingerprint(tuple(2.0 * v + 5.0 for v in base.values))
        assert base.sid_order() == mapped.sid_order()

    def test_reversed_under_decreasing_affine_map(self):
        base = Fingerprint((3.0, 1.0, 2.0, 10.0))
        mapped = Fingerprint(tuple(-2.0 * v for v in base.values))
        assert mapped.sid_order() == base.sid_order(descending=True)


class TestScaleAndTolerance:
    def test_scale_positive_even_for_zero_vector(self):
        assert Fingerprint((0.0, 0.0)).scale() == 1.0

    def test_values_close_relative(self):
        assert values_close(1e9, 1e9 * (1 + 1e-12))
        assert not values_close(1.0, 1.001)

    def test_values_close_absolute_floor(self):
        assert values_close(0.0, 1e-13)
