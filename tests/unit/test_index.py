"""Unit tests for fingerprint indexes (paper section 3.2)."""

import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.index import (
    ArrayIndex,
    NormalizationIndex,
    SortedSIDIndex,
    make_index,
)
from repro.errors import IndexError_


def affine(fp, alpha, beta):
    return Fingerprint(tuple(alpha * v + beta for v in fp.values))


BASE = Fingerprint((0.0, 1.2, 2.3, 1.3, 1.5))


class TestArrayIndex:
    def test_returns_everything(self):
        index = ArrayIndex()
        index.insert(BASE, 0)
        index.insert(affine(BASE, 2.0, 1.0), 1)
        probe = Fingerprint((9.0, 9.0, 9.0, 9.0, 9.0))
        assert index.candidates(probe) == [0, 1]

    def test_len_tracks_inserts(self):
        index = ArrayIndex()
        assert len(index) == 0
        index.insert(BASE, 0)
        assert len(index) == 1


class TestNormalizationIndex:
    def test_affine_image_found(self):
        index = NormalizationIndex()
        index.insert(BASE, 7)
        assert index.candidates(affine(BASE, 3.0, -2.0)) == [7]

    def test_negative_scale_image_found(self):
        index = NormalizationIndex()
        index.insert(BASE, 7)
        assert index.candidates(affine(BASE, -1.5, 4.0)) == [7]

    def test_unrelated_shape_not_returned(self):
        index = NormalizationIndex()
        index.insert(BASE, 7)
        probe = Fingerprint((0.0, 1.0, 0.3, 0.9, 0.1))
        assert index.candidates(probe) == []

    def test_constant_fingerprints_bucket_together(self):
        index = NormalizationIndex()
        index.insert(Fingerprint((4.0,) * 5), 1)
        assert index.candidates(Fingerprint((9.0,) * 5)) == [1]

    def test_multiple_in_bucket(self):
        index = NormalizationIndex()
        index.insert(BASE, 1)
        index.insert(affine(BASE, 5.0, 0.0), 2)
        assert set(index.candidates(BASE)) == {1, 2}


class TestSortedSIDIndex:
    def test_increasing_map_found(self):
        index = SortedSIDIndex()
        index.insert(BASE, 3)
        cubed = Fingerprint(tuple(v**3 for v in BASE.values))
        assert index.candidates(cubed) == [3]

    def test_decreasing_map_found_via_reversed_key(self):
        index = SortedSIDIndex()
        index.insert(BASE, 3)
        negated = Fingerprint(tuple(-v for v in BASE.values))
        assert index.candidates(negated) == [3]

    def test_different_order_not_returned(self):
        index = SortedSIDIndex()
        index.insert(Fingerprint((1.0, 2.0, 3.0)), 1)
        assert index.candidates(Fingerprint((2.0, 1.0, 3.0))) == []

    def test_no_duplicate_candidates_for_symmetric_orders(self):
        index = SortedSIDIndex()
        fp = Fingerprint((1.0, 2.0))
        index.insert(fp, 1)
        # A constant probe cannot collide; a matching probe appears once.
        assert index.candidates(fp).count(1) == 1


class TestFactory:
    def test_strategy_names(self):
        assert isinstance(make_index("array"), ArrayIndex)
        assert isinstance(make_index("normalization"), NormalizationIndex)
        assert isinstance(make_index("sorted_sid"), SortedSIDIndex)
        assert isinstance(make_index("sorted-sid"), SortedSIDIndex)
        assert isinstance(make_index("SID"), SortedSIDIndex)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(IndexError_):
            make_index("btree")
