"""Possible-worlds sampling: the Monte Carlo Generator of paper Figure 3.

An MCDB-style PDB approximates a distribution over database instances by
instantiating a finite set of sampled worlds; each world is produced under
one seed from the global seed bank, queries run in every world, and the
per-world results form i.i.d. samples of the answer distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.blackbox.base import BlackBox
from repro.core.seeds import DEFAULT_SEED_BANK, SeedBank, derive_seed
from repro.errors import SchemaError
from repro.probdb.query import WorldContext
from repro.probdb.relation import Relation
from repro.probdb.schema import Schema


@dataclass(frozen=True)
class VGColumn:
    """An uncertain attribute: filled per world by a black-box function.

    ``argument_columns`` name deterministic columns of the same table whose
    values parameterize the box for each row; ``parameter_names`` are the
    box's corresponding parameter names (positional match).
    """

    name: str
    box: BlackBox
    parameter_names: Tuple[str, ...]
    argument_columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.parameter_names) != len(self.argument_columns):
            raise SchemaError(
                f"VG column {self.name!r}: parameter/argument arity mismatch"
            )


class RandomRelation:
    """A random table: deterministic base columns plus VG columns.

    ``instantiate(world)`` realizes one possible world of the table — the
    canonical MCDB representation (schema + generating black boxes).
    """

    def __init__(
        self,
        base: Relation,
        vg_columns: Sequence[VGColumn],
        name: str = "random_table",
    ):
        seen = set(base.schema.names)
        for vg in vg_columns:
            if vg.name in seen:
                raise SchemaError(
                    f"VG column {vg.name!r} collides with an existing column"
                )
            seen.add(vg.name)
            for argument in vg.argument_columns:
                if argument not in base.schema:
                    raise SchemaError(
                        f"VG column {vg.name!r} references unknown column "
                        f"{argument!r}"
                    )
        self.base = base
        self.vg_columns = tuple(vg_columns)
        self.name = name
        self._schema = base.schema.concat(
            Schema.of(*(vg.name for vg in self.vg_columns))
        )

    @property
    def schema(self) -> Schema:
        return self._schema

    def instantiate(self, world: WorldContext) -> Relation:
        """Realize this table in one possible world."""
        rows: List[Tuple[object, ...]] = []
        for row_index, row in enumerate(self.base):
            realized = list(row)
            visible = self.base.row_dict(row)
            for vg_index, vg in enumerate(self.vg_columns):
                params = {
                    parameter: float(visible[argument])  # type: ignore[arg-type]
                    for parameter, argument in zip(
                        vg.parameter_names, vg.argument_columns
                    )
                }
                # Per-(row, column) seed: rows draw independent randomness
                # but remain reproducible within the world.
                seed = derive_seed(world.world_seed, row_index, vg_index)
                value = vg.box.sample(params, seed)
                visible[vg.name] = value
                realized.append(value)
            rows.append(tuple(realized))
        return Relation(self._schema, rows)


class WorldSampler:
    """Enumerates world contexts under the global seed bank."""

    def __init__(
        self,
        params: Optional[Mapping[str, float]] = None,
        seed_bank: Optional[SeedBank] = None,
    ):
        self.params = dict(params or {})
        self.seed_bank = seed_bank or DEFAULT_SEED_BANK

    def world(self, index: int) -> WorldContext:
        return WorldContext(
            params=self.params, world_seed=self.seed_bank.seed(index)
        )

    def worlds(self, count: int, start: int = 0) -> Iterator[WorldContext]:
        for index in range(start, start + count):
            yield self.world(index)
