"""Unit tests for Markov-jump evaluation (paper Algorithm 4)."""

import numpy as np
import pytest

from repro.blackbox.base import MarkovModel
from repro.blackbox.markov_branch import MarkovBranchModel
from repro.blackbox.markov_step import MarkovStepModel
from repro.core.markov import (
    FrozenStateEstimator,
    MarkovJumpRunner,
    NaiveMarkovRunner,
)
from repro.core.mapping import LinearMappingFamily
from repro.core.seeds import SeedBank
from repro.errors import MarkovError


class DriftModel(MarkovModel):
    """Deterministic uniform drift: every instance gains `rate` per step.

    The frozen-state estimator predicts 'no change'; a pure shift mapping
    absorbs the drift, so the jump evaluator should skip every step.
    """

    name = "Drift"

    def __init__(self, rate=1.0):
        super().__init__()
        self.rate = rate

    def initial_state(self):
        return 0.0

    def _step(self, state, step_index, seed):
        return state + self.rate


class StaircaseModel(MarkovModel):
    """Global discontinuities at known steps, flat elsewhere."""

    name = "Staircase"

    def __init__(self, jump_steps=(10, 20)):
        super().__init__()
        self.jump_steps = set(jump_steps)

    def initial_state(self):
        return 0.0

    def _step(self, state, step_index, seed):
        if step_index in self.jump_steps:
            return state + 5.0
        return state


class TestNaiveRunner:
    def test_invocation_count(self):
        model = DriftModel()
        result = NaiveMarkovRunner(model, instance_count=7).run(13)
        assert result.step_invocations == 7 * 13
        assert result.full_steps == 13

    def test_drift_final_states(self):
        model = DriftModel(rate=2.0)
        result = NaiveMarkovRunner(model, instance_count=3).run(10)
        np.testing.assert_allclose(result.states, 20.0)

    def test_zero_steps(self):
        model = DriftModel()
        result = NaiveMarkovRunner(model, instance_count=3).run(0)
        np.testing.assert_allclose(result.states, 0.0)
        assert result.step_invocations == 0

    def test_negative_steps_rejected(self):
        with pytest.raises(MarkovError):
            NaiveMarkovRunner(DriftModel(), instance_count=3).run(-1)

    def test_instance_count_validated(self):
        with pytest.raises(MarkovError):
            NaiveMarkovRunner(DriftModel(), instance_count=0)


class TestFrozenStateEstimator:
    def test_fingerprint_is_frozen_outputs(self):
        model = DriftModel()
        estimator = FrozenStateEstimator(
            model, np.array([1.0, 2.0, 3.0]), at_step=5
        )
        assert estimator.fingerprint(2, step=9).values == (1.0, 2.0)

    def test_rebuild_applies_mapping(self):
        from repro.core.mapping import AffineMapping

        model = DriftModel()
        estimator = FrozenStateEstimator(
            model, np.array([1.0, 2.0]), at_step=0
        )
        rebuilt = estimator.rebuild_states(AffineMapping(1.0, 4.0))
        np.testing.assert_allclose(rebuilt, [5.0, 6.0])

    def test_snapshot_is_copied(self):
        states = np.array([1.0, 2.0])
        estimator = FrozenStateEstimator(DriftModel(), states, at_step=0)
        states[0] = 99.0
        assert estimator.frozen_states[0] == 1.0


class TestJumpRunner:
    def test_uniform_drift_fully_jumped(self):
        model = DriftModel(rate=1.5)
        runner = MarkovJumpRunner(
            model, instance_count=50, fingerprint_size=5
        )
        result = runner.run(64)
        np.testing.assert_allclose(result.states, 64 * 1.5)
        assert result.full_steps == 0
        # Only fingerprint instances were ever stepped.
        assert result.step_invocations < 50 * 64

    def test_staircase_matches_naive_exactly(self):
        naive = NaiveMarkovRunner(StaircaseModel(), instance_count=30).run(32)
        jump = MarkovJumpRunner(
            StaircaseModel(), instance_count=30, fingerprint_size=5
        ).run(32)
        np.testing.assert_allclose(jump.states, naive.states)

    def test_zero_branching_matches_naive_exactly(self):
        bank = SeedBank(4)
        naive = NaiveMarkovRunner(
            MarkovBranchModel(branching=0.0),
            instance_count=40,
            seed_bank=bank,
        ).run(50)
        jump = MarkovJumpRunner(
            MarkovBranchModel(branching=0.0),
            instance_count=40,
            fingerprint_size=8,
            seed_bank=bank,
        ).run(50)
        np.testing.assert_allclose(jump.states, naive.states)

    def test_fingerprint_instances_always_exact(self):
        """The first m instances are genuinely evolved, never estimated."""
        bank = SeedBank(4)
        m = 10
        naive = NaiveMarkovRunner(
            MarkovBranchModel(branching=0.02),
            instance_count=60,
            seed_bank=bank,
        ).run(80)
        jump = MarkovJumpRunner(
            MarkovBranchModel(branching=0.02),
            instance_count=60,
            fingerprint_size=m,
            seed_bank=bank,
        ).run(80)
        np.testing.assert_allclose(jump.states[:m], naive.states[:m])

    def test_invocation_savings_at_low_branching(self):
        bank = SeedBank(4)
        naive = NaiveMarkovRunner(
            MarkovBranchModel(branching=0.001),
            instance_count=200,
            seed_bank=bank,
        ).run(100)
        jump = MarkovJumpRunner(
            MarkovBranchModel(branching=0.001),
            instance_count=200,
            fingerprint_size=10,
            seed_bank=bank,
        ).run(100)
        assert jump.step_invocations < naive.step_invocations / 4

    def test_jump_records(self):
        result = MarkovJumpRunner(
            DriftModel(), instance_count=20, fingerprint_size=4
        ).run(40)
        assert result.jumped_steps == 40
        assert all(j.length > 0 for j in result.jumps)
        assert result.jumps[-1].to_step == 40

    def test_target_zero(self):
        result = MarkovJumpRunner(
            DriftModel(), instance_count=5, fingerprint_size=5
        ).run(0)
        assert result.steps == 0
        np.testing.assert_allclose(result.states, 0.0)

    def test_mapping_family_override(self):
        runner = MarkovJumpRunner(
            DriftModel(),
            instance_count=20,
            fingerprint_size=4,
            mapping_family=LinearMappingFamily(),
        )
        result = runner.run(16)
        np.testing.assert_allclose(result.states, 16.0)

    def test_validation_errors(self):
        with pytest.raises(MarkovError):
            MarkovJumpRunner(DriftModel(), instance_count=0)
        with pytest.raises(MarkovError):
            MarkovJumpRunner(
                DriftModel(), instance_count=5, fingerprint_size=6
            )
        with pytest.raises(MarkovError):
            MarkovJumpRunner(DriftModel(), instance_count=5).run(-2)


class TestMarkovStepIntegrationShape:
    def test_release_happens_and_clusters(self):
        """Release week states settle near the demand threshold crossing."""
        model = MarkovStepModel(release_threshold=20.0)
        result = NaiveMarkovRunner(model, instance_count=50).run(40)
        # All instances should have released (demand mean reaches 40 > 20).
        assert (result.states < model.pending_release).all()
        assert 10.0 <= result.states.mean() <= 30.0

    def test_jump_tracks_naive_release_distribution(self):
        bank = SeedBank(12)
        naive = NaiveMarkovRunner(
            MarkovStepModel(release_threshold=20.0),
            instance_count=60,
            seed_bank=bank,
        ).run(40)
        jump = MarkovJumpRunner(
            MarkovStepModel(release_threshold=20.0),
            instance_count=60,
            fingerprint_size=10,
            seed_bank=bank,
        ).run(40)
        assert jump.states.mean() == pytest.approx(
            naive.states.mean(), abs=3.0
        )
        assert jump.step_invocations < naive.step_invocations
