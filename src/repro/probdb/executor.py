"""The Monte Carlo executor: run a plan in every sampled world and aggregate.

This is the dashed box of paper Figure 3: the Monte Carlo Generator hands a
seed to each instance, the query is evaluated in that world, and the
Estimator reduces the per-world scalar results to output metrics.  When the
plan's per-world answer is a whole relation, per-cell sample sets are
collected instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.estimator import Estimator, MetricSet
from repro.core.seeds import DEFAULT_SEED_BANK, SeedBank
from repro.errors import QueryError
from repro.probdb.expressions import BatchUnsupported
from repro.probdb.query import Operator, WorldContext
from repro.probdb.relation import Relation


@dataclass
class QueryDistribution:
    """Per-cell sample sets of a query whose answer is a relation.

    ``samples[column]`` is an (n_worlds, n_rows) array: one row per world.
    Row alignment across worlds requires the query to produce the same row
    count in every world (true for the paper's scenario queries, which have
    deterministic cardinality).
    """

    column_names: Tuple[str, ...]
    row_count: int
    world_count: int
    samples: Dict[str, np.ndarray]

    def metrics(
        self, column: str, row: int = 0, estimator: Optional[Estimator] = None
    ) -> MetricSet:
        estimator = estimator or Estimator()
        return estimator.estimate(self.samples[column][:, row])

    def expectation(self, column: str, row: int = 0) -> float:
        return float(self.samples[column][:, row].mean())


class MonteCarloExecutor:
    """Evaluates a logical plan over n sampled possible worlds."""

    def __init__(
        self,
        world_count: int = 1000,
        seed_bank: Optional[SeedBank] = None,
        estimator: Optional[Estimator] = None,
    ):
        if world_count < 1:
            raise QueryError("world_count must be positive")
        self.world_count = world_count
        self.seed_bank = seed_bank or DEFAULT_SEED_BANK
        self.estimator = estimator or Estimator()

    def _world(self, params: Mapping[str, float], index: int) -> WorldContext:
        return WorldContext(
            params=params, world_seed=self.seed_bank.seed(index)
        )

    def run_scalar(
        self,
        plan: Operator,
        column: str,
        params: Optional[Mapping[str, float]] = None,
        world_count: Optional[int] = None,
    ) -> MetricSet:
        """Metrics of a single-cell query (one row, one column of interest)."""
        samples = self.scalar_samples(plan, column, params, world_count)
        return self.estimator.estimate(samples)

    def scalar_samples(
        self,
        plan: Operator,
        column: str,
        params: Optional[Mapping[str, float]] = None,
        world_count: Optional[int] = None,
        start_world: int = 0,
    ) -> np.ndarray:
        """Raw i.i.d. samples of one scalar query cell across worlds.

        Single-row projection plans evaluate on the batch path: one
        vectorized pass over all world seeds (bit-identical lanes) instead
        of one operator-tree execution per world.
        """
        params = dict(params or {})
        count = world_count if world_count is not None else self.world_count
        try:
            columns = plan.execute_batch(
                params, self.seed_bank.seed_array(count, start=start_world)
            )
            value = columns[column] if column in columns else None
            if value is None:
                raise QueryError(f"unknown column {column!r}")
            return np.broadcast_to(
                np.asarray(value, dtype=float), (count,)
            ).copy()
        except BatchUnsupported:
            pass
        values: List[float] = []
        for index in range(start_world, start_world + count):
            relation = plan.execute(self._world(params, index))
            values.append(_single_cell(relation, column))
        return np.asarray(values, dtype=float)

    def run_distribution(
        self,
        plan: Operator,
        params: Optional[Mapping[str, float]] = None,
        world_count: Optional[int] = None,
    ) -> QueryDistribution:
        """Full answer distribution of a relation-valued query."""
        params = dict(params or {})
        count = world_count if world_count is not None else self.world_count
        column_names: Optional[Tuple[str, ...]] = None
        row_count: Optional[int] = None
        per_column: Dict[str, List[List[float]]] = {}
        for index in range(count):
            relation = plan.execute(self._world(params, index))
            if column_names is None:
                column_names = relation.schema.names
                row_count = len(relation)
                per_column = {name: [] for name in column_names}
            if relation.schema.names != column_names:
                raise QueryError("query schema varied across worlds")
            if len(relation) != row_count:
                raise QueryError(
                    "query cardinality varied across worlds; per-cell "
                    "distributions require deterministic row counts"
                )
            for name in column_names:
                per_column[name].append(
                    [float(v) for v in relation.column_values(name)]  # type: ignore[arg-type]
                )
        assert column_names is not None and row_count is not None
        return QueryDistribution(
            column_names=column_names,
            row_count=row_count,
            world_count=count,
            samples={
                name: np.asarray(rows, dtype=float)
                for name, rows in per_column.items()
            },
        )


def _single_cell(relation: Relation, column: str) -> float:
    if len(relation) != 1:
        raise QueryError(
            f"expected a single-row answer, got {len(relation)} rows"
        )
    value = relation.column_values(column)[0]
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise QueryError(
            f"column {column!r} value {value!r} is not numeric"
        ) from None
