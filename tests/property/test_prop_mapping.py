"""Property-based tests for mapping families (paper Algorithm 2).

The core invariant: for any fingerprint and any non-degenerate affine map,
FindLinearMapping recovers a map carrying the fingerprint onto its image —
with no false negatives, at any scale hypothesis can produce.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fingerprint import Fingerprint
from repro.core.mapping import (
    AffineMapping,
    LinearMappingFamily,
    MonotoneMappingFamily,
    ShiftMappingFamily,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

# Fingerprint entries are rounded so they are either equal or well
# separated; affine images then preserve tie structure exactly.
separated_floats = finite_floats.map(lambda v: round(v, 2))

fingerprints = st.lists(separated_floats, min_size=3, max_size=12).map(
    lambda vs: Fingerprint(tuple(vs))
)

alphas = st.floats(min_value=0.1, max_value=100.0).map(
    lambda a: round(a, 3)
).flatmap(
    lambda a: st.sampled_from([a, -a])
)
betas = st.floats(min_value=-1e3, max_value=1e3).map(lambda v: round(v, 2))


def image_of(fp, alpha, beta):
    return Fingerprint(tuple(alpha * v + beta for v in fp.values))


class TestLinearFamily:
    @given(fp=fingerprints, alpha=alphas, beta=betas)
    @settings(max_examples=200)
    def test_affine_images_always_found(self, fp, alpha, beta):
        mapping = LinearMappingFamily().find(fp, image_of(fp, alpha, beta))
        assert mapping is not None

    @given(fp=fingerprints, alpha=alphas, beta=betas)
    @settings(max_examples=200)
    def test_found_mapping_reproduces_every_entry(self, fp, alpha, beta):
        target = image_of(fp, alpha, beta)
        mapping = LinearMappingFamily().find(fp, target)
        scale = max(max(abs(v) for v in target.values), 1.0)
        for s, t in zip(fp.values, target.values):
            assert abs(mapping.apply(s) - t) <= 1e-6 * scale

    @given(fp=fingerprints, alpha=alphas, beta=betas)
    @settings(max_examples=100)
    def test_recovered_parameters_match_on_varying_fingerprints(
        self, fp, alpha, beta
    ):
        if fp.is_constant(1e-6):
            return
        mapping = LinearMappingFamily().find(fp, image_of(fp, alpha, beta))
        span = max(abs(v) for v in fp.values) or 1.0
        assert abs(mapping.alpha - alpha) <= 1e-5 * max(abs(alpha), 1.0) * max(
            span, 1.0
        )

    @given(fp=fingerprints)
    @settings(max_examples=100)
    def test_identity_always_found_against_self(self, fp):
        mapping = LinearMappingFamily().find(fp, fp)
        assert mapping is not None
        assert mapping.apply(fp[0]) == fp[0]


class TestShiftFamily:
    @given(fp=fingerprints, beta=betas)
    @settings(max_examples=150)
    def test_shift_images_always_found(self, fp, beta):
        mapping = ShiftMappingFamily().find(fp, image_of(fp, 1.0, beta))
        assert mapping is not None
        assert abs(mapping.beta - beta) <= 1e-6 * max(abs(beta), 1.0)


class TestInverse:
    @given(x=finite_floats, alpha=alphas, beta=betas)
    @settings(max_examples=200)
    def test_inverse_round_trip(self, x, alpha, beta):
        mapping = AffineMapping(alpha, beta)
        result = mapping.inverse().apply(mapping.apply(x))
        assert abs(result - x) <= 1e-6 * max(abs(x), 1.0)

    @given(alpha=alphas, beta=betas, a2=alphas, b2=betas, x=finite_floats)
    @settings(max_examples=100)
    def test_composition(self, alpha, beta, a2, b2, x):
        outer = AffineMapping(alpha, beta)
        inner = AffineMapping(a2, b2)
        composed = outer.compose(inner)
        expected = outer.apply(inner.apply(x))
        assert abs(composed.apply(x) - expected) <= 1e-6 * max(
            abs(expected), 1.0
        )


class TestMonotoneFamily:
    @given(fp=fingerprints, alpha=alphas, beta=betas)
    @settings(max_examples=100)
    def test_monotone_covers_affine(self, fp, alpha, beta):
        """Every affine map is monotone, so the monotone family must also
        find a mapping for affine images."""
        mapping = MonotoneMappingFamily().find(fp, image_of(fp, alpha, beta))
        assert mapping is not None
