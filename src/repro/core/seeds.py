"""The global seed set {σk} (paper section 3.1).

Jigsaw's fingerprinting hinges on evaluating every stochastic black box under
the *same, fixed* sequence of pseudorandom seeds.  The paper generates the
seed set once at initialization and holds it constant for the lifetime of the
system; :class:`SeedBank` plays that role here.

Seeds are derived from a single master seed with a splitmix-style mixer so
that (a) the k-th seed is a pure function of ``(master_seed, k)``, (b) seeds
for different indices are statistically independent, and (c) per-step Markov
seeds (section 4) can be derived from an instance seed without collisions.
"""

from __future__ import annotations

from typing import Iterator, List

_MASK64 = (1 << 64) - 1

# SplitMix64 constants (Steele, Lea & Flood 2014): a fixed bijective mixer
# gives us reproducible, well-distributed derived seeds with no RNG state.
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def mix64(value: int) -> int:
    """SplitMix64 finalizer: bijectively scramble a 64-bit integer."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * _MIX1) & _MASK64
    value = ((value ^ (value >> 27)) * _MIX2) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def derive_seed(*components: int) -> int:
    """Combine integer components into one well-mixed 64-bit seed.

    Deterministic, order-sensitive, and collision-resistant for the modest
    component counts used here (seed index, step index, instance index).
    """
    state = 0x243F6A8885A308D3  # pi fractional bits; arbitrary fixed IV
    for component in components:
        state = mix64((state + _GAMMA) ^ mix64(component & _MASK64))
    return state


class SeedBank:
    """A fixed, indexable sequence of i.i.d. pseudorandom seeds.

    ``seed(k)`` is the paper's σk.  Fingerprints use ``k in [0, m)``; the
    remaining Monte Carlo instances use ``k in [m, n)``, so fingerprint rounds
    double as the first ``m`` simulation rounds (section 3.1, "the fingerprint
    of F(Pi) is essentially the outputs of first m simulation rounds").
    """

    def __init__(self, master_seed: int = 0x51AC5A11):
        if master_seed < 0:
            raise ValueError("master_seed must be non-negative")
        self._master_seed = master_seed & _MASK64

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def seed(self, index: int) -> int:
        """Return σ_index, the fixed seed for simulation round ``index``."""
        if index < 0:
            raise ValueError("seed index must be non-negative")
        return derive_seed(self._master_seed, index)

    def seeds(self, count: int, start: int = 0) -> List[int]:
        """Return ``[σ_start, ..., σ_(start+count-1)]``."""
        return [self.seed(start + i) for i in range(count)]

    def iter_seeds(self, start: int = 0) -> Iterator[int]:
        """Yield σ_start, σ_start+1, ... without bound."""
        index = start
        while True:
            yield self.seed(index)
            index += 1

    def step_seed(self, index: int, step: int) -> int:
        """Seed for instance ``index`` at Markov-chain ``step`` (section 4).

        Every step of the chain needs fresh randomness, but instance ``index``
        must remain reproducible, so the step seed is a pure function of
        (master, index, step).
        """
        if step < 0:
            raise ValueError("step must be non-negative")
        return derive_seed(self._master_seed, index, step + 1)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SeedBank)
            and other._master_seed == self._master_seed
        )

    def __hash__(self) -> int:
        return hash(("SeedBank", self._master_seed))

    def __repr__(self) -> str:
        return f"SeedBank(master_seed={self._master_seed:#x})"


DEFAULT_SEED_BANK = SeedBank()
"""Module-level bank used when callers do not supply one explicitly."""
