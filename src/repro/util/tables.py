"""Plain-text table rendering for benchmark harness output.

The paper reports results as tables (Figure 7) and plotted series
(Figures 8-12); the harness prints both as aligned text so every experiment
can be regenerated from a terminal.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    rendered_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.4g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)
