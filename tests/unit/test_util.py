"""Unit tests for shared utilities: stats, timing, tables."""

import time

import numpy as np
import pytest

from repro.util.stats import RunningStats, histogram, quantiles
from repro.util.tables import format_table
from repro.util.timing import (
    FakeClock,
    InvocationCounter,
    Stopwatch,
    perf_counter,
    set_clock,
    use_clock,
)

DATA = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]


class TestRunningStats:
    def test_matches_numpy(self):
        stats = RunningStats()
        stats.add_many(DATA)
        array = np.asarray(DATA)
        assert stats.count == len(DATA)
        assert stats.mean == pytest.approx(array.mean())
        assert stats.variance == pytest.approx(array.var())
        assert stats.sample_variance == pytest.approx(array.var(ddof=1))
        assert stats.stddev == pytest.approx(array.std())
        assert stats.minimum == array.min()
        assert stats.maximum == array.max()

    def test_merge_equals_pooled(self):
        left = RunningStats()
        left.add_many(DATA[:3])
        right = RunningStats()
        right.add_many(DATA[3:])
        merged = left.merge(right)
        pooled = RunningStats()
        pooled.add_many(DATA)
        assert merged.count == pooled.count
        assert merged.mean == pytest.approx(pooled.mean)
        assert merged.variance == pytest.approx(pooled.variance)
        assert merged.minimum == pooled.minimum
        assert merged.maximum == pooled.maximum

    def test_merge_with_empty(self):
        filled = RunningStats()
        filled.add_many(DATA)
        empty = RunningStats()
        assert filled.merge(empty).mean == pytest.approx(filled.mean)
        assert empty.merge(filled).count == filled.count

    def test_copy_independent(self):
        original = RunningStats()
        original.add(1.0)
        duplicate = original.copy()
        duplicate.add(100.0)
        assert original.count == 1

    def test_empty_accessors_raise(self):
        empty = RunningStats()
        for accessor in ("mean", "variance", "minimum", "maximum"):
            with pytest.raises(ValueError):
                getattr(empty, accessor)

    def test_sample_variance_needs_two(self):
        stats = RunningStats()
        stats.add(1.0)
        with pytest.raises(ValueError):
            stats.sample_variance


class TestQuantilesHistogram:
    def test_quantiles_match_numpy(self):
        result = quantiles(DATA, [0.25, 0.5, 0.75])
        expected = np.quantile(DATA, [0.25, 0.5, 0.75])
        assert result == pytest.approx(list(expected))

    def test_quantiles_validation(self):
        with pytest.raises(ValueError):
            quantiles([], [0.5])
        with pytest.raises(ValueError):
            quantiles(DATA, [1.5])

    def test_histogram_counts_sum(self):
        counts, edges = histogram(DATA, bins=4)
        assert sum(counts) == len(DATA)
        assert len(edges) == 5

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            histogram([], bins=4)
        with pytest.raises(ValueError):
            histogram(DATA, bins=0)


class TestStopwatch:
    def test_measures_elapsed(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.01

    def test_accumulates(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed
        with watch:
            time.sleep(0.005)
        assert watch.elapsed > first

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.elapsed == 0.0

    def test_reads_injected_clock(self):
        """Stopwatch goes through the swappable clock, so a FakeClock
        makes its measurements exact (the de-flaking mechanism)."""
        with use_clock(FakeClock(tick=0.5)):
            watch = Stopwatch()
            with watch:
                pass
            assert watch.elapsed == 0.5


class TestClockInjection:
    def test_fake_clock_ticks_per_reading(self):
        clock = FakeClock(start=10.0, tick=2.0)
        assert clock() == 12.0
        assert clock() == 14.0
        assert clock.now == 14.0

    def test_advance_and_validation(self):
        clock = FakeClock(tick=0.0)
        clock.advance(3.0)
        assert clock() == 3.0
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            FakeClock(tick=-0.5)

    def test_use_clock_scopes_and_restores(self):
        import time as real_time

        fake = FakeClock(start=100.0, tick=1.0)
        with use_clock(fake):
            assert perf_counter() == 101.0
            assert perf_counter() == 102.0
        # Restored: readings track the real clock again.
        assert abs(perf_counter() - real_time.perf_counter()) < 1.0

    def test_set_clock_returns_previous(self):
        fake = FakeClock()
        previous = set_clock(fake)
        try:
            assert perf_counter() == 1.0
        finally:
            assert set_clock(previous) is fake


class TestInvocationCounter:
    def test_record_and_count(self):
        counter = InvocationCounter()
        counter.record("samples")
        counter.record("samples", 5)
        assert counter.count("samples") == 6
        assert counter.count("other") == 0

    def test_as_dict_and_reset(self):
        counter = InvocationCounter()
        counter.record("a")
        assert counter.as_dict() == {"a": 1}
        counter.reset()
        assert counter.as_dict() == {}

    def test_repr(self):
        counter = InvocationCounter()
        counter.record("x", 3)
        assert "x=3" in repr(counter)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 20]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_float_formatting(self):
        text = format_table(["v"], [[0.00001], [12345.6789], [0.5], [0.0]])
        assert "1e-05" in text
        assert "0.5" in text
        assert "0" in text
