"""Deterministic per-seed random variate generation.

The paper (section 3.1) requires every source of randomness inside a
stochastic black box to be replaced by a pseudorandom generator seeded by the
externally supplied σ.  :class:`DeterministicRng` is that generator.  Two
invocations of a black box with the same seed draw the *same* underlying
uniform/normal stream, which is exactly what makes fingerprints of different
parameter values comparable: ``Normal(µ1, s1)`` and ``Normal(µ2, s2)`` sampled
from a shared standard-normal draw ``z`` are related by the affine map
``x -> (s2/s1)(x - µ1) + µ2``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.seeds import derive_seed


class DeterministicRng:
    """A seeded random stream with the standard variate constructors.

    Variates are built from standard draws (uniform / normal / exponential)
    by explicit location-scale transforms, so outputs are affine in their
    location and scale parameters for a fixed seed — the property Jigsaw's
    linear mapping family exploits.
    """

    def __init__(self, seed: int):
        self._seed = seed
        self._generator = np.random.Generator(
            np.random.PCG64(derive_seed(seed))
        )

    @property
    def seed(self) -> int:
        return self._seed

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform draw on ``[low, high)`` via location-scale."""
        if high < low:
            raise ValueError("uniform requires high >= low")
        return low + (high - low) * float(self._generator.random())

    def normal(self, mean: float = 0.0, stddev: float = 1.0) -> float:
        """Gaussian draw via ``mean + stddev * z``."""
        if stddev < 0:
            raise ValueError("normal requires stddev >= 0")
        return mean + stddev * float(self._generator.standard_normal())

    def normal_from_variance(self, mean: float, variance: float) -> float:
        """Gaussian draw parameterized by variance, as in paper Algorithm 1."""
        if variance < 0:
            raise ValueError("variance must be non-negative")
        return self.normal(mean, math.sqrt(variance))

    def exponential(self, mean: float = 1.0) -> float:
        """Exponential draw with the given mean via scale transform."""
        if mean <= 0:
            raise ValueError("exponential requires mean > 0")
        return mean * float(self._generator.standard_exponential())

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability (threshold on a uniform draw)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")
        return float(self._generator.random()) < probability

    def poisson(self, mean: float) -> int:
        """Poisson draw (used by data-heavy user-population models)."""
        if mean < 0:
            raise ValueError("poisson requires mean >= 0")
        return int(self._generator.poisson(mean))

    def choice(self, count: int) -> int:
        """Uniform integer draw on ``[0, count)``."""
        if count <= 0:
            raise ValueError("choice requires count > 0")
        return int(self._generator.integers(0, count))

    def standard_uniform(self) -> float:
        """One raw standard-uniform draw (stream-identical to uniform())."""
        return float(self._generator.random())

    def standard_normal(self) -> float:
        """One raw standard-normal draw (what normal() location-scales)."""
        return float(self._generator.standard_normal())

    def standard_exponential(self) -> float:
        """One raw standard-exponential draw (what exponential() scales)."""
        return float(self._generator.standard_exponential())

    def standard_normals(self, count: int) -> np.ndarray:
        """Vector of standard normal draws (bulk path for vectorized models)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self._generator.standard_normal(count)

    def uniforms(self, count: int) -> np.ndarray:
        """Vector of standard uniform draws."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self._generator.random(count)
