#!/usr/bin/env python
"""Serving-daemon benchmark: open-loop load, latency, and the smoke gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
        [--scale smoke|quick] [--store DIR] [--out BENCH_serve.json]
        [--check] [--save-to benchmarks/BENCH_serve_smoke_baseline.json]

Boots ``python -m repro serve`` as a real subprocess on a seeded fixture
snapshot (or ``--store``), drives the open-loop Poisson load generator
at every configured concurrency level, then SIGTERMs the daemon and
verifies the clean-drain contract (exit code 0, every admitted request
answered, ``--save-store`` flushed).

The report splits along the determinism line the other benchmarks use:

* **Deterministic** (pure functions of snapshot + seed + request count;
  identical across hosts and concurrency levels): per-kind request
  counts, hit/miss counts, summed per-probe ``candidates_tested``, the
  warm-reuse fraction, and the daemon's final ``StoreStats`` counters.
  ``--check`` diffs these **exactly** against the committed
  ``benchmarks/BENCH_serve_smoke_baseline.json``; any drift is a real
  behavior change and must ship with a refreshed baseline
  (``--save-to``, see the ROADMAP subsystem note).
* **Informational** (host-dependent, never gated): wall-clock seconds,
  p50/p99 latency, throughput.

Exit status 0 on success, 1 on any ``--check`` mismatch or drain
violation.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(_BENCH_DIR)
DEFAULT_BASELINE = os.path.join(
    _BENCH_DIR, "BENCH_serve_smoke_baseline.json"
)

#: Keys inside each run document that legitimately vary between runs and
#: machines (same convention as check_regression.py).
NON_DETERMINISTIC_KEYS = frozenset(
    {"seconds", "throughput_rps", "latency_p50_ms", "latency_p99_ms"}
)

SCALES = {
    # Tiny and exact: what CI's serve-smoke job gates on.
    "smoke": {
        "bases": 12,
        "requests": 240,
        "rate": 800.0,
        "concurrency": (1, 4),
        "seed": 20110611,
    },
    # Laptop-sized: enough load for meaningful p99s.
    "quick": {
        "bases": 24,
        "requests": 2000,
        "rate": 4000.0,
        "concurrency": (1, 4, 8),
        "seed": 20110611,
    },
}


def _boot_daemon(snapshot, save_store):
    """Start ``python -m repro serve``; returns (process, host, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(_REPO_ROOT, "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--store",
            snapshot,
            "--port",
            "0",
            "--save-store",
            save_store,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = process.stdout.readline().strip()
    if not line.startswith("SERVE_READY "):
        process.kill()
        stderr = process.stderr.read()
        raise SystemExit(
            f"daemon failed to boot: {line!r}\n{stderr}"
        )
    fields = dict(part.split("=", 1) for part in line.split()[1:])
    return process, fields["host"], int(fields["port"])


def run_bench(scale, store=None):
    """One full bench pass; returns the report document."""
    from repro.api import Session
    from repro.serve import (
        ServeClient,
        build_fixture_session,
        build_request_stream,
        run_open_loop,
    )

    config = SCALES[scale]
    with tempfile.TemporaryDirectory() as tmp:
        if store is None:
            snapshot = os.path.join(tmp, "fixture")
            build_fixture_session(
                bases=config["bases"], seed=config["seed"]
            ).save(snapshot)
        else:
            snapshot = store
        flushed = os.path.join(tmp, "flushed")
        probe_session = Session.open(snapshot)
        requests = build_request_stream(
            probe_session, config["requests"], seed=config["seed"]
        )
        process, host, port = _boot_daemon(snapshot, flushed)
        try:
            runs = []
            for concurrency in config["concurrency"]:
                result = run_open_loop(
                    host,
                    port,
                    requests,
                    rate=config["rate"],
                    concurrency=concurrency,
                    seed=config["seed"] + concurrency,
                )
                runs.append(result.summarize())
            with ServeClient(host, port) as client:
                final_stats = client.stats()
            # Clean-drain contract: SIGTERM must answer everything
            # admitted, flush the save path, and exit 0.
            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=60)
            drain = {
                "exit_code": code,
                "flushed_bases": Session.open(flushed).basis_count(),
            }
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        return {
            "scale": scale,
            "seed": config["seed"],
            "requests": len(requests),
            "store": store or "(seeded fixture)",
            "runs": runs,
            "final_store_counters": dict(final_stats.counters),
            "final_store_bases": dict(final_stats.bases),
            "drain": drain,
        }


def deterministic_view(document):
    """The exactly-gated projection of a report document."""
    view = {
        "scale": document["scale"],
        "seed": document["seed"],
        "requests": document["requests"],
        "final_store_counters": document["final_store_counters"],
        "final_store_bases": document["final_store_bases"],
        "drain": document["drain"],
        "runs": [],
    }
    for run in document["runs"]:
        view["runs"].append(
            {
                key: value
                for key, value in run.items()
                if key not in NON_DETERMINISTIC_KEYS
            }
        )
    return view


def diff_documents(expected, actual, path="$"):
    """Recursive exact diff; returns a list of difference strings."""
    differences = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                differences.append(f"{path}.{key}: unexpected")
            elif key not in actual:
                differences.append(f"{path}.{key}: missing")
            else:
                differences.extend(
                    diff_documents(
                        expected[key], actual[key], f"{path}.{key}"
                    )
                )
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            differences.append(
                f"{path}: length {len(actual)} != {len(expected)}"
            )
        else:
            for index, (left, right) in enumerate(
                zip(expected, actual)
            ):
                differences.extend(
                    diff_documents(left, right, f"{path}[{index}]")
                )
    elif expected != actual:
        differences.append(f"{path}: {actual!r} != {expected!r}")
    return differences


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="quick"
    )
    parser.add_argument(
        "--store",
        default=None,
        help="serve this snapshot instead of the seeded fixture",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the full report (timing included) to this JSON file",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exact-diff the deterministic projection against the "
            "committed smoke baseline (forces --scale smoke semantics)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline path for --check / --save-to refresh",
    )
    parser.add_argument(
        "--save-to",
        default=None,
        help=(
            "write the deterministic projection as the new baseline "
            "(the refresh procedure; review the diff before committing)"
        ),
    )
    args = parser.parse_args(argv)
    if args.check and args.scale != "smoke":
        parser.error("--check gates the smoke scale only")
    if args.check and args.store:
        parser.error("--check requires the seeded fixture store")

    document = run_bench(args.scale, store=args.store)

    for run in document["runs"]:
        print(
            f"concurrency={run['concurrency']}: "
            f"p50={run['latency_p50_ms']:.3f}ms "
            f"p99={run['latency_p99_ms']:.3f}ms "
            f"throughput={run['throughput_rps']:.0f}rps "
            f"warm={run['warm_reuse_fraction']:.2%}"
        )
    print(
        f"drain: exit={document['drain']['exit_code']} "
        f"flushed_bases={document['drain']['flushed_bases']}"
    )

    if document["drain"]["exit_code"] != 0:
        print("FAIL: daemon did not drain cleanly on SIGTERM")
        return 1

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")

    if args.save_to:
        with open(args.save_to, "w") as handle:
            json.dump(
                deterministic_view(document),
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"baseline written to {args.save_to}")

    if args.check:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        differences = diff_documents(
            baseline, deterministic_view(document)
        )
        if differences:
            print(
                f"FAIL: {len(differences)} deterministic counter(s) "
                f"drifted from {args.baseline}:"
            )
            for difference in differences:
                print(f"  {difference}")
            return 1
        print("smoke counters match the committed baseline exactly")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))
    sys.exit(main())
