"""Basis distributions and the FindMatch store (paper section 3.1, Alg 3).

During execution Jigsaw incrementally maintains a set of *basis
distributions* — (fingerprint, output metrics) pairs for parameter points
that were fully simulated.  A new point first computes its fingerprint; if a
stored basis maps onto it, the expensive remaining Monte Carlo rounds are
skipped and the basis's metrics are remapped instead.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.backend import BackendArg, resolve_backend
from repro.core.columnar import CandidateKeys, ColumnarStore
from repro.errors import LifecycleError
from repro.core.estimator import Estimator, MetricSet
from repro.core.fingerprint import (
    DEFAULT_ABS_TOL,
    DEFAULT_REL_TOL,
    Fingerprint,
)
from repro.core.index import FingerprintIndex, make_index
from repro.core.mapping import (
    AffineMapping,
    LinearMappingFamily,
    Mapping,
    MappingFamily,
)


@dataclass
class BasisDistribution:
    """A fully simulated distribution available for reuse.

    ``samples`` holds the raw Monte Carlo outputs (fingerprint rounds first),
    enabling sample-level reuse under non-affine mappings and sample
    recycling in the interactive engine.
    """

    basis_id: int
    fingerprint: Fingerprint
    samples: np.ndarray
    metrics: MetricSet
    #: Successful reuses of this basis (probes it answered), bumped by the
    #: match engine.  The eviction policy's notion of reuse *value*;
    #: persisted since snapshot version 2.
    hits: int = 0

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=float)

    def nbytes(self) -> int:
        """Approximate resident size (samples + fingerprint vector), the
        unit :class:`EvictionPolicy`'s ``max_bytes`` bound is written in."""
        return int(self.samples.nbytes) + 8 * self.fingerprint.size


@dataclass
class StoreStats:
    """Work counters for basis matching (benchmarks read these)."""

    lookups: int = 0
    candidates_tested: int = 0
    matches: int = 0
    bases_created: int = 0
    #: Wall-clock seconds spent inside match()/match_batch().  Measured with
    #: the raw OS clock, not the injectable bench clock (a per-probe tick
    #: would distort the fake-clock figure tests), excluded from equality
    #: and from :meth:`as_dict` — parity suites compare only the
    #: deterministic counters above.
    match_seconds: float = field(default=0.0, compare=False)

    def as_dict(self) -> Dict[str, int]:
        return {
            "lookups": self.lookups,
            "candidates_tested": self.candidates_tested,
            "matches": self.matches,
            "bases_created": self.bases_created,
        }


class MatchResult(NamedTuple):
    """A successful FindMatch: the stored basis plus the witness mapping.

    A ``NamedTuple``, so the long-standing ``basis, mapping = store.match(
    fp)`` unpacking (and truthiness checks against ``None``) keep working
    unchanged.
    """

    basis: BasisDistribution
    mapping: Mapping


@dataclass(frozen=True)
class EvictionPolicy:
    """Bound a store's size by evicting its least-reusable bases first.

    ``max_bases`` caps the basis count, ``max_bytes`` the summed
    :meth:`BasisDistribution.nbytes`; either (or both) may be set, and
    eviction runs until every configured bound holds.  ``keep`` picks the
    ranking: ``"value"`` retires the least-hit basis first (ties broken
    toward the older id, so a never-hit newcomer outlives a never-hit
    veteran), ``"recent"`` ignores hit counts and retires oldest-first.
    Ranking is a pure function of the store's contents, so applying a
    policy is deterministic — the lifecycle parity suites rely on that.
    """

    max_bases: Optional[int] = None
    max_bytes: Optional[int] = None
    keep: str = "value"

    def __post_init__(self) -> None:
        if self.keep not in ("value", "recent"):
            raise LifecycleError(
                f"unknown eviction ranking {self.keep!r}; "
                f"choose 'value' or 'recent'"
            )
        for name in ("max_bases", "max_bytes"):
            bound = getattr(self, name)
            if bound is not None and int(bound) < 0:
                raise LifecycleError(f"{name} must be non-negative")

    def victims(self, store: "BasisStore") -> List[int]:
        """Basis ids to evict, in eviction order (store unchanged)."""
        bases = store.bases
        if self.keep == "value":
            ranked = sorted(bases, key=lambda b: (b.hits, b.basis_id))
        else:
            ranked = list(bases)  # ascending id == oldest first
        count = len(bases)
        total = (
            sum(basis.nbytes() for basis in bases)
            if self.max_bytes is not None
            else 0
        )
        victims: List[int] = []
        for basis in ranked:
            over_count = (
                self.max_bases is not None and count > int(self.max_bases)
            )
            over_bytes = (
                self.max_bytes is not None and total > int(self.max_bytes)
            )
            if not (over_count or over_bytes):
                break
            victims.append(basis.basis_id)
            count -= 1
            total -= basis.nbytes()
        return victims


#: Columnar lookups per store that are cross-checked against the scalar
#: loop before the vectorized kernels are trusted outright (the same
#: self-verification contract as the fastrng stream replay: a surprising
#: host/numpy pays with speed, never with changed answers).
VERIFY_LOOKUPS = 4

#: Probes with fewer candidates than this take the scalar loop: a couple of
#: per-candidate find() calls against cached fingerprints beats the fixed
#: cost of gathering rows and launching the matrix kernels.  Purely a
#: latency knob — both paths return bit-identical results — exposed as an
#: instance attribute so tests can force either path.
COLUMNAR_MIN_CANDIDATES = 8


class BasisStore:
    """The set of basis distributions plus its fingerprint index.

    Implements the matching half of paper Algorithm 3 (FindMatch): probe the
    index for candidates, run the family's FindMapping on each, and return
    the first basis with a valid mapping.

    Matching is *columnar*: stored fingerprints (and their index-key rows)
    live in contiguous matrices (:mod:`repro.core.columnar`), and a probe
    validates all its candidates through one vectorized
    :meth:`MappingFamily.find_matrix` call instead of a per-candidate
    Python loop.  The scalar loop remains as the reference path: the first
    :data:`VERIFY_LOOKUPS` columnar lookups are checked against it and any
    disagreement permanently falls back (``columnar=False`` forces the
    scalar path outright).  Either way every probe returns the same basis
    id, the same mapping parameters, and the same candidates-tested count
    — first-match-wins tie-breaking included.
    """

    def __init__(
        self,
        mapping_family: Optional[MappingFamily] = None,
        index: Optional[FingerprintIndex] = None,
        index_strategy: str = "normalization",
        estimator: Optional[Estimator] = None,
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
        columnar: bool = True,
        backend: BackendArg = None,
    ):
        self.mapping_family = mapping_family or LinearMappingFamily()
        #: The store's compute backend.  ``None`` resolves to the
        #: process-active instance (shared: its one self-test serves every
        #: default store); a *name* builds a fresh instance, giving this
        #: store its own verification/degrade state — the store-scoped
        #: analogue of the columnar ``VERIFY_LOOKUPS`` fallback below.
        self.backend = resolve_backend(backend)
        if index is None:
            if (
                index_strategy == "normalization"
                and not self.mapping_family.supports_normal_form
            ):
                # Normalization is meaningless for families without a normal
                # form; fall back to the always-correct scan.
                index_strategy = "array"
            index = make_index(index_strategy)
        self.index = index
        self.estimator = estimator or Estimator()
        # Coerce so integer tolerances survive the snapshot hex codec
        # (``float.hex`` exists, ``int.hex`` does not) and compare
        # consistently across save/load.
        self.rel_tol = float(rel_tol)
        self.abs_tol = float(abs_tol)
        self.stats = StoreStats()
        self._bases: Dict[int, BasisDistribution] = {}
        self._next_id = 0
        self.columnar = ColumnarStore()
        self.columnar_enabled = bool(
            columnar and self.mapping_family.supports_find_matrix
        )
        self.columnar_min_candidates = COLUMNAR_MIN_CANDIDATES
        self._verify_remaining = VERIFY_LOOKUPS

    def __len__(self) -> int:
        return len(self._bases)

    @property
    def bases(self) -> Tuple[BasisDistribution, ...]:
        return tuple(self._bases[i] for i in sorted(self._bases))

    def get(self, basis_id: int) -> BasisDistribution:
        return self._bases[basis_id]

    def match(self, fingerprint: Fingerprint) -> Optional[MatchResult]:
        """Find a stored basis and mapping M with M(basis.fp) == fingerprint.

        The mapping direction follows the reuse direction: applying M to the
        basis's samples/metrics yields the probe point's.  Single-probe form
        of :meth:`match_batch` — same columnar candidate validation, same
        counters.
        """
        started = time.perf_counter()
        self.stats.lookups += 1
        result, tested = self._match_candidates(
            fingerprint, self.index.candidates(fingerprint)
        )
        self.stats.candidates_tested += tested
        if result is not None:
            self.stats.matches += 1
        self.stats.match_seconds += time.perf_counter() - started
        return result

    def match_batch(
        self,
        fingerprints: Iterable[Fingerprint],
        tested_out: Optional[List[int]] = None,
    ) -> List[Optional[MatchResult]]:
        """:meth:`match` for a batch of probes against the current store.

        Index keys for all probes are computed in one vectorized pass
        (:meth:`FingerprintIndex.candidates_batch`), then every probe's
        candidates are validated through the columnar ``find_matrix``
        kernels.  Probes do not see each other: the store is read-only
        during the call, so result ``i`` is exactly ``match(fps[i])`` —
        ids, mapping parameters, and counter increments all identical.

        ``tested_out``, when given, receives one per-probe
        candidates-tested count per result (the serving layer reports it
        on each response; the sum is exactly what ``candidates_tested``
        grew by).
        """
        started = time.perf_counter()
        probes = list(fingerprints)
        results: List[Optional[MatchResult]] = []
        for probe, candidates in zip(
            probes,
            self.index.candidates_batch(probes, backend=self.backend),
        ):
            self.stats.lookups += 1
            result, tested = self._match_candidates(probe, candidates)
            self.stats.candidates_tested += tested
            if result is not None:
                self.stats.matches += 1
            if tested_out is not None:
                tested_out.append(tested)
            results.append(result)
        self.stats.match_seconds += time.perf_counter() - started
        return results

    def _match_candidates(
        self, fingerprint: Fingerprint, candidates: Sequence[int]
    ) -> Tuple[Optional[MatchResult], int]:
        """Validate a probe's candidate list; returns (result, tested).

        ``tested`` is the scalar loop's accounting: candidates visited up
        to and including the first match (all of them on a miss).  The
        winning basis's :attr:`~BasisDistribution.hits` reuse counter is
        bumped here, so both the scalar and columnar paths (and every
        verify/fallback branch) count a reuse exactly once.
        """
        result, tested = self._validate_candidates(fingerprint, candidates)
        if result is not None:
            result.basis.hits += 1
        return result, tested

    def _validate_candidates(
        self, fingerprint: Fingerprint, candidates: Sequence[int]
    ) -> Tuple[Optional[MatchResult], int]:
        if (
            not self.columnar_enabled
            or len(candidates) < self.columnar_min_candidates
        ):
            return self._match_scalar(fingerprint, candidates)
        result = self._match_columnar(fingerprint, candidates)
        if self._verify_remaining > 0:
            self._verify_remaining -= 1
            reference = self._match_scalar(fingerprint, candidates)
            if not self._same_result(result, reference):
                warnings.warn(
                    "columnar FindMapping disagreed with the scalar "
                    "reference; falling back to the scalar path for this "
                    "store",
                    RuntimeWarning,
                )
                self.columnar_enabled = False
                return reference
        return result

    def _match_scalar(
        self, fingerprint: Fingerprint, candidates: Sequence[int]
    ) -> Tuple[Optional[MatchResult], int]:
        """Reference implementation: per-candidate FindMapping loop."""
        for position, basis_id in enumerate(candidates):
            basis = self._bases[basis_id]
            mapping = self.mapping_family.find(
                basis.fingerprint,
                fingerprint,
                rel_tol=self.rel_tol,
                abs_tol=self.abs_tol,
            )
            if mapping is not None:
                return MatchResult(basis, mapping), position + 1
        return None, len(candidates)

    def _match_columnar(
        self, fingerprint: Fingerprint, candidates: Sequence[int]
    ) -> Tuple[Optional[MatchResult], int]:
        """Vectorized candidate validation over the columnar matrices."""
        positions, rows, block = self.columnar.gather(
            candidates, fingerprint.size
        )
        if block is None or len(rows) == 0:
            # No candidate has the probe's size: the scalar loop would have
            # visited (and counted) each one, matching none.
            return None, len(candidates)
        plausible, build = self.mapping_family.find_matrix(
            block.rows(rows),
            fingerprint,
            rel_tol=self.rel_tol,
            abs_tol=self.abs_tol,
            keys=CandidateKeys(block, rows, backend=self.backend),
            backend=self.backend,
        )
        for index in np.nonzero(plausible)[0]:
            mapping = build(int(index))
            if mapping is not None:
                position = int(positions[index])
                basis = self._bases[candidates[position]]
                return MatchResult(basis, mapping), position + 1
        return None, len(candidates)

    @staticmethod
    def _same_result(
        left: Tuple[Optional[MatchResult], int],
        right: Tuple[Optional[MatchResult], int],
    ) -> bool:
        """Whether two (result, tested) pairs agree exactly."""
        (left_match, left_tested) = left
        (right_match, right_tested) = right
        if left_tested != right_tested:
            return False
        if (left_match is None) != (right_match is None):
            return False
        if left_match is None:
            return True
        return (
            left_match.basis.basis_id == right_match.basis.basis_id
            and left_match.mapping == right_match.mapping
        )

    def add(
        self,
        fingerprint: Fingerprint,
        samples: np.ndarray,
        metrics: Optional[MetricSet] = None,
    ) -> BasisDistribution:
        """Store a fully simulated distribution as a new basis."""
        if metrics is None:
            metrics = self.estimator.estimate(samples)
        basis = BasisDistribution(
            basis_id=self._next_id,
            fingerprint=fingerprint,
            samples=np.asarray(samples, dtype=float),
            metrics=metrics,
        )
        self._bases[basis.basis_id] = basis
        self.index.insert(fingerprint, basis.basis_id)
        self.columnar.add(basis.basis_id, fingerprint)
        self._next_id += 1
        self.stats.bases_created += 1
        return basis

    def remove(self, basis_id: int) -> BasisDistribution:
        """Excise one basis: targeted invalidation (lifecycle layer).

        The basis leaves ``_bases``, its index bucket (survivor order
        preserved verbatim — first-match-wins is part of the FindMatch
        contract), and the columnar mirror (tombstoned, compacted past the
        threshold).  Its id is retired, never reissued: ``_next_id`` only
        grows, so snapshots, merges, and external references stay
        unambiguous.  Returns the removed basis; raises :class:`KeyError`
        for an unknown id (mirroring :meth:`get`).
        """
        basis = self._bases.pop(basis_id, None)
        if basis is None:
            raise KeyError(basis_id)
        self.index.remove(basis.fingerprint, basis_id)
        self.columnar.discard(basis_id)
        return basis

    def invalidate_where(
        self, predicate: Callable[[BasisDistribution], bool]
    ) -> List[int]:
        """Remove every basis the predicate marks stale; returns their ids
        (ascending).  The predicate sees each live basis exactly once and
        must not mutate the store."""
        doomed = [
            basis_id
            for basis_id in sorted(self._bases)
            if predicate(self._bases[basis_id])
        ]
        for basis_id in doomed:
            self.remove(basis_id)
        return doomed

    def evict(self, policy: EvictionPolicy) -> List[int]:
        """Apply an eviction policy; returns the evicted ids in order."""
        victims = policy.victims(self)
        for basis_id in victims:
            self.remove(basis_id)
        return victims

    def compact(self) -> int:
        """Force the columnar mirror tombstone-free now (snapshots do this
        implicitly); returns the number of rows dropped."""
        return self.columnar.compact()

    def merge(
        self,
        other: "BasisStore",
        reprobe: bool = True,
    ) -> Dict[int, Tuple[int, Optional[Mapping]]]:
        """Fold another store's bases into this one (sharded-sweep merge).

        With ``reprobe=True`` (default), each incoming basis — in creation
        order — is re-probed against this store's index: if its fingerprint
        already maps onto a stored basis, it *collapses* into that mapping
        instead of being inserted, so cross-shard duplicate simulation work
        shrinks to a mapping entry.  This is safe for exactly the reason
        index false negatives are (paper section 3.2): a duplicate basis
        costs storage, never correctness, so collapsing is pure win and
        keeping a duplicate (when the probe misses) is merely unfortunate.

        With ``reprobe=False`` every basis is adopted verbatim through the
        bulk :meth:`FingerprintIndex.merge` path — no FindMapping calls, no
        collapsing — which is the right mode when the shards are known to
        partition a space with no cross-shard similarity.

        Returns ``{other_basis_id: (basis_id_here, mapping)}`` where
        ``mapping`` is the collapse mapping (apply it to the absorbed
        basis's samples/metrics to recover the incoming ones) or ``None``
        for bases adopted verbatim.
        """
        translation: Dict[int, Tuple[int, Optional[Mapping]]] = {}
        if not reprobe:
            id_map: Dict[int, int] = {}
            for basis in other.bases:
                adopted = BasisDistribution(
                    basis_id=self._next_id,
                    fingerprint=basis.fingerprint,
                    samples=basis.samples,
                    metrics=basis.metrics,
                )
                self._bases[adopted.basis_id] = adopted
                self._next_id += 1
                self.stats.bases_created += 1
                id_map[basis.basis_id] = adopted.basis_id
                translation[basis.basis_id] = (adopted.basis_id, None)
            self.index.merge(other.index, id_map)
            # Adopt the shard's columnar matrices wholesale: one
            # concatenate per fingerprint size, no key recomputation.
            self.columnar.adopt(other.columnar, id_map)
            return translation
        # Re-probe pass.  Each incoming fingerprint runs through the
        # columnar match engine; the loop stays per-basis because a miss
        # *inserts* (changing what later incoming fingerprints may match,
        # and hence the exact counters the scalar semantics pin down), so
        # probes are not independent the way a read-only match_batch's are.
        for basis in other.bases:
            matched = self.match(basis.fingerprint)
            if matched is not None:
                target, mapping = matched
                translation[basis.basis_id] = (target.basis_id, mapping)
            else:
                adopted = self.add(
                    basis.fingerprint, basis.samples, metrics=basis.metrics
                )
                translation[basis.basis_id] = (adopted.basis_id, None)
        return translation

    def extend_basis(
        self, basis_id: int, new_samples: np.ndarray
    ) -> BasisDistribution:
        """Append refinement samples to a basis and refresh its metrics.

        Used by the interactive engine (section 5): new samples generated for
        a point of interest are recycled into its basis through M⁻¹, making
        every correlated point's estimate more accurate at once.
        """
        basis = self._bases[basis_id]
        basis.samples = np.concatenate(
            [basis.samples, np.asarray(new_samples, dtype=float)]
        )
        basis.metrics = self.estimator.estimate(basis.samples)
        return basis

    def metrics_for(
        self, basis: BasisDistribution, mapping: Mapping
    ) -> MetricSet:
        """Metrics of the mapped distribution: Mest in closed form when the
        mapping is affine, else recomputed from mapped samples."""
        if isinstance(mapping, AffineMapping):
            return basis.metrics.remap(mapping)
        return self.estimator.estimate(mapping.apply_array(basis.samples))
