"""Batch parameter-space exploration with fingerprint reuse (paper §2.3, §3).

The explorer plays the role of the Parameter Enumerator plus the dashed PDB
box of paper Figure 3.  For each parameter point it runs the first ``m``
Monte Carlo rounds (which double as the fingerprint), probes the basis store,
and either

* reuses a mapped basis — skipping the remaining ``n − m`` rounds — or
* completes the full simulation and registers a new basis.

Treating the *entire* Monte Carlo simulation as the stochastic function F is
the paper's "taken to one extreme" usage and is what the evaluation measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

import numpy as np

from repro.blackbox.base import BlackBox, ParamKey, Params, param_key
from repro.core.adaptive import AdaptiveBudget, grow_samples
from repro.core.basis import BasisStore
from repro.core.estimator import Estimator, MetricSet
from repro.core.fingerprint import Fingerprint
from repro.core.mapping import Mapping
from repro.core.seeds import DEFAULT_SEED_BANK, SeedBank

#: A simulation is any deterministic-under-seed scalar function of a
#: parameter point — typically an entire PDB query over black boxes.
Simulation = Callable[[Params, int], float]

#: A batch simulation evaluates one point under many seeds in one call.
BatchSimulation = Callable[[Params, np.ndarray], np.ndarray]


def make_batch_simulation(simulation) -> BatchSimulation:
    """Adapt any simulation to the batched ``(params, seeds) -> vector`` form.

    Black boxes (or objects exposing ``sample_batch``) use their native
    vectorized path; bound ``BlackBox.sample`` methods are unwrapped to
    their box's batch path; everything else falls back to a scalar loop that
    is bit-identical to calling ``simulation(params, seed)`` per seed.
    """
    if isinstance(simulation, BlackBox):
        return simulation.sample_batch
    bound_self = getattr(simulation, "__self__", None)
    if (
        isinstance(bound_self, BlackBox)
        and getattr(simulation, "__name__", "") == "sample"
    ):
        return bound_self.sample_batch
    batch = getattr(simulation, "sample_batch", None)
    if batch is not None:
        return batch

    def fallback(params: Params, seeds: np.ndarray) -> np.ndarray:
        return np.array(
            [float(simulation(params, int(seed))) for seed in np.atleast_1d(seeds)],
            dtype=np.float64,
        )

    return fallback


@dataclass
class ExplorerStats:
    """Machine-independent work accounting for one exploration run."""

    points_total: int = 0
    points_reused: int = 0
    bases_created: int = 0
    fingerprint_samples: int = 0
    full_samples: int = 0

    @property
    def samples_drawn(self) -> int:
        return self.fingerprint_samples + self.full_samples

    @property
    def reuse_fraction(self) -> float:
        if self.points_total == 0:
            return 0.0
        return self.points_reused / self.points_total


@dataclass
class PointResult:
    """Outcome for one parameter point.

    ``samples_drawn`` is the total draws this point cost (fingerprint
    rounds included); under a fixed budget it is ``fingerprint_size`` for
    reused points and ``samples_per_point`` otherwise, while an
    :class:`~repro.core.adaptive.AdaptiveBudget` lets fully simulated
    points stop anywhere in ``[min_samples, cap]``.
    """

    params: Dict[str, float]
    metrics: MetricSet
    reused: bool
    basis_id: int
    mapping: Optional[Mapping]
    fingerprint: Fingerprint
    samples_drawn: int = 0


@dataclass
class ExplorationResult:
    """All per-point outcomes plus aggregate statistics.

    ``stats`` always carries the canonical (serial-equivalent) accounting,
    so counters are invariant to how the sweep was executed; when the run
    came from :class:`repro.core.parallel.ParallelExplorer`, ``parallel``
    additionally reports the shard-side work (duplicates, resimulations).
    """

    points: Dict[ParamKey, PointResult] = field(default_factory=dict)
    stats: ExplorerStats = field(default_factory=ExplorerStats)
    parallel: Optional[object] = None

    def metrics(self, params: Params) -> MetricSet:
        return self.points[param_key(params)].metrics

    def result(self, params: Params) -> PointResult:
        return self.points[param_key(params)]

    def __len__(self) -> int:
        return len(self.points)


class ParameterExplorer:
    """Sweeps a parameter space, reusing Monte Carlo work via fingerprints."""

    def __init__(
        self,
        simulation: Simulation,
        samples_per_point: int = 1000,
        fingerprint_size: int = 10,
        basis_store: Optional[BasisStore] = None,
        index_strategy: str = "normalization",
        seed_bank: Optional[SeedBank] = None,
        estimator: Optional[Estimator] = None,
        adaptive: Optional[AdaptiveBudget] = None,
    ):
        if fingerprint_size < 1:
            raise ValueError("fingerprint_size must be at least 1")
        if samples_per_point < fingerprint_size:
            raise ValueError(
                "samples_per_point must be >= fingerprint_size (fingerprint "
                "rounds double as the first simulation rounds)"
            )
        self.simulation = simulation
        self.adaptive = adaptive
        self._batch_simulation = make_batch_simulation(simulation)
        self.samples_per_point = samples_per_point
        self.fingerprint_size = fingerprint_size
        self.estimator = estimator or Estimator()
        # A repro.api.Session stands in for its store wherever a
        # basis_store is accepted (duck-typed: no core -> api import).
        if basis_store is not None and hasattr(
            basis_store, "resolve_basis_store"
        ):
            basis_store = basis_store.resolve_basis_store()
        # `is None`, not `or`: an empty BasisStore has len() == 0 and is
        # falsy, so `or` would silently discard a caller's fresh store
        # (and its mapping family / index strategy) in favor of the
        # default — exactly the stores callers most often pass in.
        if basis_store is None:
            basis_store = BasisStore(
                index_strategy=index_strategy, estimator=self.estimator
            )
        self.store = basis_store
        self.seed_bank = seed_bank or DEFAULT_SEED_BANK
        self._fingerprint_seeds = self.seed_bank.seed_array(
            self.fingerprint_size
        )
        self._completion_seeds = self.seed_bank.seed_array(
            self.samples_per_point - self.fingerprint_size,
            start=self.fingerprint_size,
        )

    def explore_point(self, params: Params) -> PointResult:
        """Evaluate one parameter point with reuse (paper Algorithm 3).

        The fingerprint rounds and (on a miss) the completion rounds are
        each one batched call: two array operations per fully simulated
        point, one for a reused point.  The store probe itself is columnar
        (:meth:`BasisStore.match` is the single-probe form of
        ``match_batch``): all index candidates are validated through one
        vectorized FindMapping kernel rather than a per-candidate Python
        loop.  Probes stay per-point because a miss *inserts* a basis that
        later points may legitimately match — batching across points would
        change the reuse decisions the paper's Algorithm 3 makes.  With an
        adaptive budget, the completion rounds instead grow in geometric
        blocks until the confidence interval is inside tolerance (or the
        fixed budget is exhausted); the reuse decision is fingerprint-only
        either way, so enabling the policy never changes which points are
        reused.
        """
        fingerprint_values = self._batch_simulation(
            params, self._fingerprint_seeds
        )
        fingerprint = Fingerprint(fingerprint_values)
        matched = self.store.match(fingerprint)
        if matched is not None:
            basis, mapping = matched
            metrics = self.store.metrics_for(basis, mapping)
            return PointResult(
                params=dict(params),
                metrics=metrics,
                reused=True,
                basis_id=basis.basis_id,
                mapping=mapping,
                fingerprint=fingerprint,
                samples_drawn=self.fingerprint_size,
            )
        if self.adaptive is None:
            remaining = self._batch_simulation(params, self._completion_seeds)
            samples = np.concatenate(
                [np.asarray(fingerprint_values, dtype=float), remaining]
            )
        else:
            samples = grow_samples(
                np.asarray(fingerprint_values, dtype=float),
                lambda start, count: self._batch_simulation(
                    params, self.seed_bank.seed_array(count, start=start)
                ),
                cap=max(
                    self.fingerprint_size,
                    self.adaptive.cap(self.samples_per_point),
                ),
                policy=self.adaptive,
            )
        basis = self.store.add(fingerprint, samples)
        return PointResult(
            params=dict(params),
            metrics=basis.metrics,
            reused=False,
            basis_id=basis.basis_id,
            mapping=None,
            fingerprint=fingerprint,
            samples_drawn=int(samples.size),
        )

    def run(self, space: Iterable[Params]) -> ExplorationResult:
        """Explore every point of ``space`` (the Parameter Enumerator loop)."""
        result = ExplorationResult()
        for params in space:
            point = self.explore_point(params)
            key = param_key(params)
            result.points[key] = point
            result.stats.points_total += 1
            result.stats.fingerprint_samples += self.fingerprint_size
            if point.reused:
                result.stats.points_reused += 1
            else:
                result.stats.bases_created += 1
                result.stats.full_samples += (
                    point.samples_drawn - self.fingerprint_size
                )
        return result


class NaiveExplorationResult(Dict[ParamKey, MetricSet]):
    """Per-point metrics of a naive sweep plus its work accounting.

    Subclasses ``dict`` so existing ``result[param_key(point)]`` consumers
    keep working; ``stats`` gives benchmarks the same machine-independent
    counters the fingerprinting explorer reports (every round is a full
    sample — ``fingerprint_samples`` stays 0 and nothing is ever reused).
    """

    def __init__(self) -> None:
        super().__init__()
        self.stats = ExplorerStats()


class NaiveExplorer:
    """Baseline: full Monte Carlo at every point, no fingerprinting.

    The paper's "naive generate-everything approach" (section 6.2); shares
    the seed bank so its outputs are sample-for-sample comparable with the
    fingerprinting explorer.
    """

    def __init__(
        self,
        simulation: Simulation,
        samples_per_point: int = 1000,
        seed_bank: Optional[SeedBank] = None,
        estimator: Optional[Estimator] = None,
    ):
        self.simulation = simulation
        self._batch_simulation = make_batch_simulation(simulation)
        self.samples_per_point = samples_per_point
        self.seed_bank = seed_bank or DEFAULT_SEED_BANK
        self.estimator = estimator or Estimator()
        self._seeds = self.seed_bank.seed_array(self.samples_per_point)

    def explore_point(self, params: Params) -> MetricSet:
        samples = self._batch_simulation(params, self._seeds)
        return self.estimator.estimate(samples)

    def run(self, space: Iterable[Params]) -> NaiveExplorationResult:
        result = NaiveExplorationResult()
        for params in space:
            result[param_key(params)] = self.explore_point(params)
            result.stats.points_total += 1
            result.stats.full_samples += self.samples_per_point
        return result
