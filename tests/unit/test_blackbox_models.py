"""Unit tests for the Figure 6 black-box model library."""

import numpy as np
import pytest

from repro.blackbox import (
    BlackBoxRegistry,
    CapacityModel,
    DemandModel,
    FunctionBlackBox,
    MarkovBranchModel,
    MarkovStepModel,
    OverloadModel,
    SynthBasisModel,
    UserSelectionModel,
    default_registry,
    param_key,
)
from repro.core.mapping import find_linear_mapping
from repro.core.seeds import SeedBank

BANK = SeedBank(21)


def fingerprint(box, params, m=10):
    return [box.sample(params, seed) for seed in BANK.seeds(m)]


class TestProtocol:
    def test_determinism(self):
        box = DemandModel()
        params = {"current_week": 10.0, "feature_release": 5.0}
        assert box.sample(params, 42) == box.sample(params, 42)

    def test_missing_parameter_raises(self):
        with pytest.raises(KeyError):
            DemandModel().sample({"current_week": 1.0}, 0)

    def test_invocation_counter(self):
        box = DemandModel()
        params = {"current_week": 1.0, "feature_release": 5.0}
        box.sample(params, 0)
        box.sample(params, 1)
        assert box.invocations == 2
        box.reset_invocations()
        assert box.invocations == 0

    def test_call_alias(self):
        box = DemandModel()
        params = {"current_week": 1.0, "feature_release": 5.0}
        assert box(params, 3) == box.sample(params, 3)

    def test_param_key_canonical(self):
        assert param_key({"b": 1, "a": 2}) == (("a", 2.0), ("b", 1.0))

    def test_function_blackbox(self):
        box = FunctionBlackBox(
            lambda p, s: p["x"] * 2, name="Double", parameter_names=("x",)
        )
        assert box.sample({"x": 3.0}, 0) == 6.0
        assert box.name == "Double"

    def test_repr(self):
        assert "Demand" in repr(DemandModel())


class TestRegistry:
    def test_register_and_lookup_case_insensitive(self):
        registry = BlackBoxRegistry()
        registry.register(DemandModel(), "DemandModel")
        assert registry.lookup("demandmodel").name == "Demand"
        assert "DEMANDMODEL" in registry

    def test_duplicate_rejected(self):
        registry = BlackBoxRegistry()
        registry.register(DemandModel(), "D")
        with pytest.raises(ValueError):
            registry.register(DemandModel(), "d")

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            BlackBoxRegistry().lookup("nope")

    def test_default_registry_has_paper_models(self):
        registry = default_registry()
        for name in (
            "DemandModel",
            "CapacityModel",
            "OverloadModel",
            "UserSelectionModel",
            "SynthBasisModel",
        ):
            assert name in registry


class TestDemand:
    def test_algorithm1_structure_before_release(self):
        """Before the feature releases, demand is Normal(week, 0.1*week)."""
        box = DemandModel()
        week = 16.0
        draws = np.array(
            [
                box.sample(
                    {"current_week": week, "feature_release": 50.0}, seed
                )
                for seed in BANK.seeds(3000)
            ]
        )
        assert draws.mean() == pytest.approx(week, abs=0.15)
        assert draws.var() == pytest.approx(0.1 * week, rel=0.2)

    def test_release_adds_growth(self):
        box = DemandModel()
        week = 30.0
        pre = np.mean(fingerprint(
            box, {"current_week": week, "feature_release": 50.0}, m=500
        ))
        post = np.mean(fingerprint(
            box, {"current_week": week, "feature_release": 10.0}, m=500
        ))
        # Post-release adds Normal(0.2*20, ...) ≈ +4.
        assert post - pre == pytest.approx(4.0, abs=1.0)

    def test_same_code_path_linearly_mappable(self):
        """The property Jigsaw exploits: affine fingerprints across weeks."""
        box = DemandModel()
        fp1 = fingerprint(box, {"current_week": 4.0, "feature_release": 50.0})
        fp2 = fingerprint(box, {"current_week": 9.0, "feature_release": 50.0})
        assert find_linear_mapping(fp1, fp2) is not None

    def test_post_release_also_mappable(self):
        """Demand stays one location-scale family after release too, which
        is why the paper's ~5000-point Demand space needs a single basis."""
        box = DemandModel()
        fp1 = fingerprint(box, {"current_week": 20.0, "feature_release": 50.0})
        fp2 = fingerprint(box, {"current_week": 20.0, "feature_release": 5.0})
        assert find_linear_mapping(fp1, fp2) is not None

    def test_whole_space_needs_at_most_two_bases(self):
        """One basis for every stochastic point plus the degenerate week 0."""
        from repro.core.explorer import ParameterExplorer

        box = DemandModel()
        points = [
            {"current_week": float(w), "feature_release": float(f)}
            for w in range(0, 21, 2)
            for f in (4.0, 10.0, 16.0)
        ]
        explorer = ParameterExplorer(box.sample, samples_per_point=30)
        result = explorer.run(points)
        assert result.stats.bases_created <= 2

    def test_variance_validation(self):
        with pytest.raises(ValueError):
            DemandModel(base_variance=-1.0)


class TestCapacity:
    def test_far_from_purchases_is_base_plus_volume(self):
        box = CapacityModel(
            base_capacity=40.0, purchase_volume=30.0, structure_size=1.0
        )
        draws = np.array(
            [
                box.sample(
                    {
                        "current_week": 50.0,
                        "purchase1": 5.0,
                        "purchase2": 10.0,
                    },
                    seed,
                )
                for seed in BANK.seeds(500)
            ]
        )
        assert draws.mean() == pytest.approx(100.0, abs=0.5)

    def test_before_purchases_no_volume(self):
        box = CapacityModel(structure_size=1.0)
        draws = np.array(
            [
                box.sample(
                    {
                        "current_week": 2.0,
                        "purchase1": 30.0,
                        "purchase2": 40.0,
                    },
                    seed,
                )
                for seed in BANK.seeds(500)
            ]
        )
        assert draws.mean() == pytest.approx(box.base_capacity, abs=0.5)

    def test_transient_fraction_shrinks_with_distance(self):
        """The 'structure' around a purchase: the online fraction grows as
        exp(-distance/mean) shrinks (paper section 6.2)."""
        box = CapacityModel(structure_size=4.0, noise_stddev=0.0)

        def online_fraction(distance):
            hits = 0
            for seed in BANK.seeds(400):
                value = box.sample(
                    {
                        "current_week": 20.0 + distance,
                        "purchase1": 20.0,
                        "purchase2": 500.0,
                    },
                    seed,
                )
                hits += value > box.base_capacity + 1.0
            return hits / 400

        assert online_fraction(0.5) < online_fraction(2.0) < online_fraction(12.0)

    def test_weeks_far_from_structures_share_basis(self):
        box = CapacityModel(structure_size=1.0)
        point = {"purchase1": 5.0, "purchase2": 10.0}
        fp1 = fingerprint(box, {"current_week": 30.0, **point})
        fp2 = fingerprint(box, {"current_week": 45.0, **point})
        assert find_linear_mapping(fp1, fp2) is not None

    def test_failure_rate_decay(self):
        box = CapacityModel(
            weekly_failure_rate=0.01, noise_stddev=0.0, structure_size=1.0
        )
        early = box.sample(
            {"current_week": 0.0, "purchase1": 500.0, "purchase2": 500.0}, 7
        )
        late = box.sample(
            {"current_week": 50.0, "purchase1": 500.0, "purchase2": 500.0}, 7
        )
        assert late < early

    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityModel(structure_size=-1.0)
        with pytest.raises(ValueError):
            CapacityModel(weekly_failure_rate=1.5)


class TestOverload:
    def test_boolean_output(self):
        box = OverloadModel()
        values = {
            box.sample(
                {"current_week": 40.0, "purchase1": 50.0, "purchase2": 50.0},
                seed,
            )
            for seed in BANK.seeds(100)
        }
        assert values <= {0.0, 1.0}

    def test_overload_likely_when_capacity_tight(self):
        tight = OverloadModel(
            capacity=CapacityModel(base_capacity=1.0, purchase_volume=0.0)
        )
        rate = np.mean(
            [
                tight.sample(
                    {
                        "current_week": 40.0,
                        "purchase1": 100.0,
                        "purchase2": 100.0,
                    },
                    seed,
                )
                for seed in BANK.seeds(200)
            ]
        )
        assert rate > 0.95

    def test_overload_rare_when_capacity_ample(self):
        ample = OverloadModel(
            capacity=CapacityModel(base_capacity=1000.0)
        )
        rate = np.mean(
            [
                ample.sample(
                    {
                        "current_week": 10.0,
                        "purchase1": 0.0,
                        "purchase2": 0.0,
                    },
                    seed,
                )
                for seed in BANK.seeds(200)
            ]
        )
        assert rate == 0.0


class TestUserSelection:
    def test_scalar_and_vectorized_paths_agree(self):
        box = UserSelectionModel(user_count=50)
        params = {"current_week": 6.0}
        for seed in BANK.seeds(5):
            scalar = box.sample(params, seed)
            bulk = box.sample_vectorized(params, seed)
            assert bulk == pytest.approx(scalar, rel=1e-9)

    def test_total_scales_with_users(self):
        small = UserSelectionModel(user_count=10)
        large = UserSelectionModel(user_count=1000)
        params = {"current_week": 0.0}
        assert large.sample_vectorized(params, 3) > small.sample(params, 3)

    def test_growth_with_week(self):
        box = UserSelectionModel(user_count=200, weekly_growth=0.1)
        early = box.sample_vectorized({"current_week": 0.0}, 5)
        late = box.sample_vectorized({"current_week": 10.0}, 5)
        assert late == pytest.approx(early * 2.0, rel=1e-9)

    def test_weeks_are_scale_mappable(self):
        box = UserSelectionModel(user_count=30)
        fp1 = fingerprint(box, {"current_week": 1.0})
        fp2 = fingerprint(box, {"current_week": 7.0})
        assert find_linear_mapping(fp1, fp2) is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            UserSelectionModel(user_count=0)
        with pytest.raises(ValueError):
            UserSelectionModel(activity_probability=2.0)


class TestSynthBasis:
    def test_exact_basis_count(self):
        box = SynthBasisModel(basis_count=4)
        fps = {}
        for point in range(16):
            fps[point] = fingerprint(box, {"point": float(point)})
        for a in range(16):
            for b in range(16):
                mappable = find_linear_mapping(fps[a], fps[b]) is not None
                same_class = (a % 4) == (b % 4)
                assert mappable == same_class, (a, b)

    def test_work_knob_does_not_change_distribution(self):
        cheap = SynthBasisModel(basis_count=3, work_per_sample=1)
        costly = SynthBasisModel(basis_count=3, work_per_sample=5)
        assert cheap.sample({"point": 2.0}, 9) == costly.sample(
            {"point": 2.0}, 9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SynthBasisModel(basis_count=0)
        with pytest.raises(ValueError):
            SynthBasisModel(work_per_sample=0)
        with pytest.raises(ValueError):
            SynthBasisModel().sample({"point": -1.0}, 0)


class TestMarkovModels:
    def test_branch_increments_monotonically(self):
        model = MarkovBranchModel(branching=1.0)
        state = model.initial_state()
        for step in range(5):
            state = model.step(state, step, BANK.step_seed(0, step))
        assert state == 5.0

    def test_branch_zero_never_moves(self):
        model = MarkovBranchModel(branching=0.0)
        state = model.initial_state()
        for step in range(20):
            state = model.step(state, step, BANK.step_seed(0, step))
        assert state == 0.0

    def test_branch_validation(self):
        with pytest.raises(ValueError):
            MarkovBranchModel(branching=1.5)
        with pytest.raises(ValueError):
            MarkovBranchModel(work_per_step=0)

    def test_step_invocation_counter(self):
        model = MarkovBranchModel()
        model.step(0.0, 0, 1)
        model.step(0.0, 1, 2)
        assert model.step_invocations == 2
        model.reset_invocations()
        assert model.step_invocations == 0

    def test_markov_step_releases_once(self):
        model = MarkovStepModel(release_threshold=5.0)
        state = model.initial_state()
        release_week = None
        for step in range(30):
            state = model.step(state, step, BANK.step_seed(0, step))
            if state < model.pending_release and release_week is None:
                release_week = state
        assert release_week is not None
        # Once released, the week never changes.
        assert state == release_week

    def test_markov_step_output_is_state(self):
        model = MarkovStepModel()
        assert model.output(7.0, 3) == 7.0
