"""Deterministic test harnesses shipped with the library.

:mod:`repro.testing.faults` injects supervised-execution faults (crashes,
hangs, interrupts, checkpoint corruption) addressed by shard index and
attempt, so fault-tolerance tests exercise every supervision path without
real signals or real clocks.
"""

from repro.testing.faults import (
    Fault,
    FaultPlan,
    InjectedCrash,
    InjectedHang,
    active_plan,
    corrupt_array_file,
    use_faults,
)

__all__ = [
    "Fault",
    "FaultPlan",
    "InjectedCrash",
    "InjectedHang",
    "active_plan",
    "corrupt_array_file",
    "use_faults",
]
