"""The Estimator component (paper Figure 3): samples → output metrics.

The PDB subsystem hands the estimator a set of i.i.d. samples of the query
result distribution; the estimator reduces them to the characteristics of
interest (expectation, standard deviation, quantiles, histogram).  For
Jigsaw's reuse path, a :class:`MetricSet` computed for one basis distribution
can be *remapped* through an affine mapping — ``Mest`` in the paper — instead
of being recomputed, which is the entire point of fingerprinting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.adaptive import AdaptiveBudget
from repro.core.mapping import AffineMapping, Mapping
from repro.errors import EstimatorError

DEFAULT_QUANTILES: Tuple[float, ...] = (0.05, 0.25, 0.5, 0.75, 0.95)


@dataclass(frozen=True)
class Histogram:
    """Equi-width sample histogram (the PDB's binned answer representation)."""

    counts: Tuple[int, ...]
    edges: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.counts) + 1:
            raise EstimatorError(
                f"histogram needs {len(self.counts) + 1} edges, got "
                f"{len(self.edges)}"
            )

    @property
    def total(self) -> int:
        return sum(self.counts)

    def density(self) -> Tuple[float, ...]:
        """Per-bin probability mass."""
        total = self.total or 1
        return tuple(c / total for c in self.counts)

    def remap(self, mapping: "AffineMapping") -> "Histogram":
        """Map bin edges through M; a negative α reverses the bin order.

        Exact up to boundary semantics: numpy bins are half-open on the
        left, so a sample sitting exactly on an interior edge can land in
        the adjacent bin when a histogram is recomputed after a
        negative-α map (the bin *edges* always agree exactly).
        """
        edges = [mapping.apply(e) for e in self.edges]
        counts = list(self.counts)
        if mapping.alpha < 0:
            edges.reverse()
            counts.reverse()
        return Histogram(tuple(counts), tuple(edges))

    def probability_above(self, threshold: float) -> float:
        """P(X > threshold) estimated from bin mass (linear within bins)."""
        total = self.total
        if total == 0:
            raise EstimatorError("empty histogram")
        mass = 0.0
        for count, lo, hi in zip(self.counts, self.edges, self.edges[1:]):
            if lo >= threshold:
                mass += count
            elif hi > threshold and hi > lo:
                mass += count * (hi - threshold) / (hi - lo)
        return mass / total


@dataclass(frozen=True)
class MetricSet:
    """Summary metrics of one output distribution.

    ``expectation`` is the Monte Carlo mean; ``quantiles`` pairs each
    requested probability with its sample quantile; ``histogram`` is the
    optional binned representation (paper section 2.1 lists it among the
    answer forms a PDB reports).
    """

    count: int
    expectation: float
    stddev: float
    minimum: float
    maximum: float
    quantiles: Tuple[Tuple[float, float], ...] = ()
    histogram: Optional[Histogram] = None

    def quantile(self, probability: float) -> float:
        # Tolerant match: probabilities that round-trip through a remap
        # (e.g. 1.0 - p under a negative-α mapping) differ from the
        # requested value by a ulp or two and must stay retrievable.
        for p, value in self.quantiles:
            if p == probability or math.isclose(
                p, probability, rel_tol=1e-12, abs_tol=1e-12
            ):
                return value
        raise EstimatorError(
            f"quantile {probability} was not computed; available: "
            f"{[p for p, _ in self.quantiles]}"
        )

    def remap(self, mapping: Mapping) -> "MetricSet":
        """Apply ``Mest`` — derive this distribution's metrics for a mapped one.

        Affine maps transform every metric in closed form: the expectation
        maps through M, the standard deviation scales by |α|, extrema swap
        when α < 0, and each quantile p maps to M(quantile) at probability p
        (or 1-p when α < 0 reverses orientation).
        """
        if not isinstance(mapping, AffineMapping):
            raise EstimatorError(
                "closed-form metric remapping requires an affine mapping; "
                "remap samples instead for general mappings"
            )
        alpha, _ = mapping.alpha, mapping.beta
        lo = mapping.apply(self.minimum)
        hi = mapping.apply(self.maximum)
        if alpha < 0:
            lo, hi = hi, lo
        mapped_quantiles = tuple(
            sorted(
                (
                    (p if alpha >= 0 else 1.0 - p),
                    mapping.apply(value),
                )
                for p, value in self.quantiles
            )
        )
        return replace(
            self,
            expectation=mapping.apply(self.expectation),
            stddev=abs(alpha) * self.stddev,
            minimum=lo,
            maximum=hi,
            quantiles=mapped_quantiles,
            histogram=(
                self.histogram.remap(mapping)
                if self.histogram is not None
                else None
            ),
        )

    def approx_equals(self, other: "MetricSet", rel_tol: float = 1e-9) -> bool:
        """Tolerant comparison of every metric (tests and validation)."""
        scale = max(abs(self.expectation), abs(other.expectation), 1.0)
        tol = rel_tol * scale
        if abs(self.expectation - other.expectation) > tol:
            return False
        if abs(self.stddev - other.stddev) > tol:
            return False
        if abs(self.minimum - other.minimum) > tol:
            return False
        if abs(self.maximum - other.maximum) > tol:
            return False
        if len(self.quantiles) != len(other.quantiles):
            return False
        return all(
            a[0] == b[0] and abs(a[1] - b[1]) <= tol
            for a, b in zip(self.quantiles, other.quantiles)
        )


class Estimator:
    """Aggregates i.i.d. Monte Carlo samples into a :class:`MetricSet`.

    ``histogram_bins`` enables the binned answer representation; it stays
    off by default since most callers only need moments and quantiles.
    """

    def __init__(
        self,
        quantile_probabilities: Sequence[float] = DEFAULT_QUANTILES,
        histogram_bins: int = 0,
    ):
        for p in quantile_probabilities:
            if not 0.0 <= p <= 1.0:
                raise EstimatorError(f"quantile probability {p} not in [0,1]")
        if histogram_bins < 0:
            raise EstimatorError("histogram_bins must be non-negative")
        self.quantile_probabilities = tuple(quantile_probabilities)
        self.histogram_bins = histogram_bins

    def estimate(self, samples: Sequence[float]) -> MetricSet:
        array = np.asarray(samples, dtype=float)
        if array.size == 0:
            raise EstimatorError("cannot estimate metrics from zero samples")
        if self.quantile_probabilities:
            quantile_values = np.quantile(array, self.quantile_probabilities)
            quantiles = tuple(
                (float(p), float(v))
                for p, v in zip(self.quantile_probabilities, quantile_values)
            )
        else:
            quantiles = ()
        histogram = None
        if self.histogram_bins:
            counts, edges = np.histogram(array, bins=self.histogram_bins)
            histogram = Histogram(
                tuple(int(c) for c in counts),
                tuple(float(e) for e in edges),
            )
        return MetricSet(
            count=int(array.size),
            expectation=float(array.mean()),
            # Population std: metrics describe the sampled worlds directly.
            stddev=float(array.std()),
            minimum=float(array.min()),
            maximum=float(array.max()),
            quantiles=quantiles,
            histogram=histogram,
        )

    def halfwidth(self, metrics: MetricSet, policy: AdaptiveBudget) -> float:
        """CI half-width on ``metrics.expectation`` under ``policy``.

        Works on a :class:`MetricSet` rather than raw samples so callers
        holding only remapped metrics (the interactive engine's mapped
        basis view) can evaluate convergence without re-materializing
        sample vectors.  A mapped :class:`MetricSet` carries exactly the
        mean/stddev/extrema the mapped samples would have, so the verdict
        here equals the verdict on the mapped sample vector.
        """
        return policy.halfwidth(
            metrics.count, metrics.stddev, metrics.maximum - metrics.minimum
        )

    def converged(self, metrics: MetricSet, policy: AdaptiveBudget) -> bool:
        """Whether ``metrics`` already satisfies ``policy`` (cap ignored)."""
        return policy.satisfied(
            metrics.count,
            metrics.expectation,
            metrics.stddev,
            metrics.maximum - metrics.minimum,
        )

    def probability(
        self, samples: Sequence[float], threshold: float = 0.5
    ) -> float:
        """Fraction of samples exceeding ``threshold`` (P(X > t) estimate)."""
        array = np.asarray(samples, dtype=float)
        if array.size == 0:
            raise EstimatorError("cannot estimate probability of no samples")
        return float((array > threshold).mean())


def remap_samples(samples: np.ndarray, mapping: Mapping) -> np.ndarray:
    """Map a basis's raw samples through M (general-mapping reuse path)."""
    return mapping.apply_array(np.asarray(samples, dtype=float))


def merge_metric_sets(
    first: MetricSet, second: MetricSet, estimator: Optional[Estimator] = None
) -> MetricSet:
    """Combine two metric sets over disjoint sample batches.

    Exact for count/mean/variance/extrema; quantiles are dropped unless the
    caller recomputes them from retained samples (the interactive engine's
    progressive refinement keeps samples and recomputes instead).
    """
    total = first.count + second.count
    if total == 0:
        raise EstimatorError("cannot merge two empty metric sets")
    weight_first = first.count / total
    weight_second = second.count / total
    mean = weight_first * first.expectation + weight_second * second.expectation
    delta = second.expectation - first.expectation
    variance = (
        weight_first * first.stddev**2
        + weight_second * second.stddev**2
        + weight_first * weight_second * delta * delta
    )
    return MetricSet(
        count=total,
        expectation=mean,
        stddev=float(np.sqrt(variance)),
        minimum=min(first.minimum, second.minimum),
        maximum=max(first.maximum, second.maximum),
        quantiles=(),
    )
