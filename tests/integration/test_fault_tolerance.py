"""Chaos suite: sweeps under injected faults stay bit-identical to serial.

The fault-tolerance contract (ISSUE 6): under every fault plan — worker
crashes, flaky shards that fail twice then succeed, retry exhaustion with
graceful degradation, hangs reaped by supervision deadlines, interrupts
resumed from checkpoints — a sweep's estimates, reuse decisions, and
deterministic counters are **bitwise identical** to an undisturbed serial
run, for workers 1, 2, and 4.  Shards are pure functions of the seed
bank, so recovery is always recomputation and recomputation is always
exact; these tests pin that end to end over both sharded engines
(:class:`~repro.core.parallel.ParallelExplorer` and
:class:`~repro.scenario.ScenarioRunner`), the resumable checkpoint layer,
and the CLI boundary.

Worker counts parametrize over {1, 2, 4} capped by pytest's ``--workers``
option (see the root ``conftest.py``); CI runs the suite with
``--workers 4`` so the real fork-pool paths are always covered.

Interrupt faults fire at *collection* time, and pooled collection order
is nondeterministic — an interrupt can land before any shard was
accepted.  Tests that assert exact resume counts therefore force inline
execution (monkeypatching ``fork_available``) or use the
run-to-completion-then-rerun pattern; parity assertions need no such
care, since they hold for every collection order.
"""

import multiprocessing
import threading

import pytest

from repro.blackbox import default_registry
from repro.bench.workloads import capacity_workload
from repro.cli import main as cli_main
from repro.core import parallel
from repro.core.explorer import ParameterExplorer
from repro.core.parallel import ParallelExplorer, fork_available, fork_map
from repro.core.persist import snapshot_info
from repro.core.supervise import SupervisionPolicy
from repro.errors import JigsawError, SnapshotCompatibilityError
from repro.lang import compile_query
from repro.scenario import ScenarioRunner
from repro.testing import FaultPlan, corrupt_array_file, use_faults

SAMPLES = 40

QUERY = """
DECLARE PARAMETER @current_week AS RANGE 0 TO 6 STEP BY 2;
DECLARE PARAMETER @feature_release AS SET (2, 4);
SELECT DemandModel(@current_week, @feature_release) AS demand
INTO results;
"""

#: Fault plans address shard 0 so they fire for every worker count (the
#: single-worker layout has only shard 0).  Policies disable backoff —
#: retry *content* is under test, not pacing — and give the hang plan a
#: short real deadline so the pooled reaper path runs in test time.
SCENARIOS = {
    "crash_once": (
        lambda: FaultPlan({(0, 1): "crash"}),
        SupervisionPolicy(backoff_base=0.0),
    ),
    "flaky_fail_twice": (
        lambda: FaultPlan.fail_n_then_succeed(0, failures=2),
        SupervisionPolicy(backoff_base=0.0),
    ),
    "exhaust_then_degrade": (
        lambda: FaultPlan({(0, a): "crash" for a in (1, 2, 3)}),
        SupervisionPolicy(max_attempts=3, backoff_base=0.0),
    ),
    "hang_reaped_by_deadline": (
        lambda: FaultPlan({(0, 1): "hang"}),
        SupervisionPolicy(
            timeout=0.5, backoff_base=0.0, poll_interval=0.02
        ),
    ),
}


def pytest_generate_tests(metafunc):
    if "workers" in metafunc.fixturenames:
        cap = metafunc.config.getoption("workers")
        counts = [w for w in (1, 2, 4) if w <= cap] or [1]
        metafunc.parametrize("workers", counts)
    if "fault_case" in metafunc.fixturenames:
        metafunc.parametrize("fault_case", sorted(SCENARIOS))


def _serial_exploration():
    workload = capacity_workload(weeks=10, purchase_step=4)
    explorer = ParameterExplorer(
        workload.simulation(),
        samples_per_point=SAMPLES,
        fingerprint_size=workload.fingerprint_size,
    )
    return explorer.run(workload.points)


def _parallel_explorer(workers, **kwargs):
    workload = capacity_workload(weeks=10, purchase_step=4)
    explorer = ParallelExplorer(
        workload.simulation(),
        workers=workers,
        samples_per_point=SAMPLES,
        fingerprint_size=workload.fingerprint_size,
        **kwargs,
    )
    return explorer, workload.points


def _assert_exploration_parity(result, serial):
    assert result.stats == serial.stats
    assert len(result.points) == len(serial.points)
    for key, serial_point in serial.points.items():
        point = result.points[key]
        assert point.metrics == serial_point.metrics, key
        assert point.reused == serial_point.reused
        assert point.basis_id == serial_point.basis_id
        assert point.mapping == serial_point.mapping
        assert point.fingerprint.values == serial_point.fingerprint.values


def _scenario():
    return compile_query(QUERY, default_registry()).scenario


def _scenario_runner(workers, **kwargs):
    return ScenarioRunner(
        _scenario(),
        samples_per_point=SAMPLES,
        fingerprint_size=10,
        workers=workers,
        **kwargs,
    )


def _serial_scenario_result():
    return _scenario_runner(1).run()


def _assert_scenario_parity(result, serial):
    assert result.points == serial.points
    assert result.metrics == serial.metrics
    assert result.stats == serial.stats


class TestExplorerChaosParity:
    """ParallelExplorer under every fault plan: bit-identical to serial."""

    def test_faulted_sweep_matches_serial(self, workers, fault_case):
        make_plan, policy = SCENARIOS[fault_case]
        serial = _serial_exploration()
        explorer, points = _parallel_explorer(
            workers, supervision=policy
        )
        with use_faults(make_plan()) as plan:
            result = explorer.run(points)
        _assert_exploration_parity(result, serial)
        assert plan.triggered, "fault plan never fired"
        report = result.parallel.supervision
        assert report is not None
        if fault_case == "exhaust_then_degrade":
            assert report.degraded_shards == (0,)
        else:
            assert report.degraded_shards == ()
            assert report.retries >= 1


class TestScenarioChaosParity:
    """ScenarioRunner under every fault plan: bit-identical to serial."""

    def test_faulted_sweep_matches_serial(self, workers, fault_case):
        make_plan, policy = SCENARIOS[fault_case]
        serial = _serial_scenario_result()
        runner = _scenario_runner(workers, supervision=policy)
        with use_faults(make_plan()) as plan:
            result = runner.run()
        _assert_scenario_parity(result, serial)
        assert plan.triggered, "fault plan never fired"
        if fault_case == "exhaust_then_degrade":
            assert result.parallel.supervision.degraded_shards == (0,)


class TestCheckpointResume:
    def test_completed_checkpoint_resumes_every_shard(
        self, tmp_path, workers
    ):
        serial = _serial_exploration()
        explorer, points = _parallel_explorer(
            workers, checkpoint=str(tmp_path / "ckpt")
        )
        first = explorer.run(points)
        _assert_exploration_parity(first, serial)
        assert first.parallel.shards_resumed == 0

        rerun, points = _parallel_explorer(
            workers, checkpoint=str(tmp_path / "ckpt")
        )
        resumed = rerun.run(points)
        _assert_exploration_parity(resumed, serial)
        shard_count = len(first.parallel.shard_sizes)
        assert resumed.parallel.shards_resumed == shard_count
        # Nothing was left to supervise.
        assert resumed.parallel.supervision is None

    def test_interrupted_sweep_resumes_only_the_remainder(
        self, tmp_path, monkeypatch
    ):
        # Inline execution (no fork pool) accepts shards in order, which
        # makes the interrupt point — and therefore the resume count —
        # deterministic: shard 0 lands in the checkpoint, shard 1 dies.
        monkeypatch.setattr(parallel, "fork_available", lambda: False)
        serial = _serial_exploration()
        explorer, points = _parallel_explorer(
            2, checkpoint=str(tmp_path / "ckpt")
        )
        with use_faults(FaultPlan({(1, 1): "interrupt"})) as plan:
            with pytest.raises(KeyboardInterrupt):
                explorer.run(points)
        assert plan.triggered == [(1, 1, "interrupt")]

        rerun, points = _parallel_explorer(
            2, checkpoint=str(tmp_path / "ckpt")
        )
        result = rerun.run(points)
        _assert_exploration_parity(result, serial)
        assert result.parallel.shards_resumed == 1

    def test_scenario_checkpoint_round_trip(self, tmp_path, workers):
        serial = _serial_scenario_result()
        runner = _scenario_runner(
            workers, checkpoint=str(tmp_path / "ckpt")
        )
        _assert_scenario_parity(runner.run(), serial)
        resumed = _scenario_runner(
            workers, checkpoint=str(tmp_path / "ckpt")
        ).run()
        _assert_scenario_parity(resumed, serial)
        assert resumed.parallel.shards_resumed == len(
            resumed.parallel.shard_sizes
        )

    def test_single_worker_checkpoint_stays_bit_identical(self, tmp_path):
        # --checkpoint with one worker routes through the sharded engine;
        # the replay invariant keeps even the counters serial.
        serial = _serial_scenario_result()
        checkpointed = _scenario_runner(
            1, checkpoint=str(tmp_path / "ckpt")
        ).run()
        _assert_scenario_parity(checkpointed, serial)

    def test_mismatched_configuration_is_refused(self, tmp_path):
        explorer, points = _parallel_explorer(
            2, checkpoint=str(tmp_path / "ckpt")
        )
        explorer.run(points)
        other, points = _parallel_explorer(
            4, checkpoint=str(tmp_path / "ckpt")
        )
        with pytest.raises(SnapshotCompatibilityError) as excinfo:
            other.run(points)
        assert isinstance(excinfo.value, JigsawError)

    def test_corrupt_checkpoint_recomputes_everything(self, tmp_path):
        serial = _serial_exploration()
        explorer, points = _parallel_explorer(
            2, checkpoint=str(tmp_path / "ckpt")
        )
        explorer.run(points)
        corrupt_array_file(str(tmp_path / "ckpt"))
        rerun, points = _parallel_explorer(
            2, checkpoint=str(tmp_path / "ckpt")
        )
        result = rerun.run(points)
        assert result.parallel.shards_resumed == 0
        _assert_exploration_parity(result, serial)

    def test_corruption_injected_at_the_last_write(
        self, tmp_path, monkeypatch
    ):
        # Each record rewrites the whole directory, so only damage to the
        # *final* write survives; schedule exactly that, then prove the
        # resume detects it and recomputes instead of loading garbage.
        monkeypatch.setattr(parallel, "fork_available", lambda: False)
        serial = _serial_exploration()
        explorer, points = _parallel_explorer(
            2, checkpoint=str(tmp_path / "ckpt")
        )
        with use_faults(FaultPlan(corrupt_checkpoint_after=2)) as plan:
            first = explorer.run(points)
        assert plan.checkpoints_written == 2
        assert plan.checkpoints_corrupted == 1
        _assert_exploration_parity(first, serial)

        rerun, points = _parallel_explorer(
            2, checkpoint=str(tmp_path / "ckpt")
        )
        result = rerun.run(points)
        assert result.parallel.shards_resumed == 0
        _assert_exploration_parity(result, serial)


class TestCliInterruptBoundary:
    @pytest.fixture
    def query_file(self, tmp_path):
        optimize = QUERY + (
            "OPTIMIZE SELECT @feature_release FROM results\n"
            "WHERE MAX(EXPECT demand) < 100\n"
            "GROUP BY feature_release\n"
            "FOR MAX @feature_release;\n"
        )
        path = tmp_path / "scenario.sql"
        path.write_text(optimize)
        return str(path)

    def test_interrupt_exits_130_with_valid_flushed_state(
        self, tmp_path, query_file, capsys
    ):
        checkpoint = str(tmp_path / "ckpt")
        store = str(tmp_path / "store")
        argv = [
            "run", query_file,
            "--samples", "30",
            "--checkpoint", checkpoint,
            "--save-store", store,
        ]
        with use_faults(FaultPlan({(0, 1): "interrupt"})) as plan:
            assert cli_main(argv) == 130
        captured = capsys.readouterr()
        assert "interrupted" in captured.err
        assert checkpoint in captured.err
        assert plan.triggered == [(0, 1, "interrupt")]
        # The flushed snapshot is complete and loadable — interruption
        # must never leave a half-written snapshot behind.
        assert snapshot_info(store)["version"] >= 1

        # Re-invoking the same command completes and prints exactly what
        # an undisturbed run prints.
        assert cli_main(argv) == 0
        resumed_out = capsys.readouterr().out
        assert cli_main(["run", query_file, "--samples", "30"]) == 0
        undisturbed_out = capsys.readouterr().out
        # The resumed header carries a sharding annotation; the counters
        # and the answer in front of it are the serial run's, exactly.
        assert resumed_out.splitlines()[0].startswith(
            undisturbed_out.splitlines()[0]
        )
        assert "best: @feature_release=4" in resumed_out
        assert "best: @feature_release=4" in undisturbed_out

    def test_supervision_flags_are_plumbed(self, query_file, capsys):
        assert (
            cli_main(
                [
                    "run", query_file,
                    "--samples", "30",
                    "--shard-retries", "2",
                    "--shard-timeout", "30",
                ]
            )
            == 0
        )
        assert "explored 8 points" in capsys.readouterr().out

    def test_interrupt_outside_a_sweep_exits_130(self, tmp_path, capsys):
        # The main() boundary handles interrupts that fire before any
        # runner exists (here: during query loading).
        class Interrupting:
            def __call__(self, *args, **kwargs):
                raise KeyboardInterrupt

        path = tmp_path / "boom.sql"
        path.write_text(QUERY)
        import repro.cli as cli

        original = cli._load
        cli._load = Interrupting()
        try:
            assert cli_main(["run", str(path)]) == 130
        finally:
            cli._load = original
        assert "interrupted" in capsys.readouterr().err


def _blocked_shard(event, index):
    if index == 0:
        if not event.wait(timeout=60):
            raise RuntimeError("release event never arrived")
    return index


def _releasing_shard(event, index):
    if index == 0:
        event.set()
    return index


class TestConcurrentSweeps:
    @pytest.mark.skipif(
        not fork_available(), reason="fork start method unavailable"
    )
    def test_fork_maps_overlap_instead_of_serializing(self):
        """Two sweeps fork-map concurrently (regression: the old single
        context slot held its lock for the pool's lifetime, so sweep B
        could not start until sweep A finished — this exact shape then
        deadlocked, since A's shard waits on an event only B sets)."""
        event = multiprocessing.get_context("fork").Event()
        outcome = {}

        def sweep_a():
            outcome["a"] = fork_map(_blocked_shard, event, 2, 2)

        def sweep_b():
            outcome["b"] = fork_map(_releasing_shard, event, 2, 2)

        thread_a = threading.Thread(target=sweep_a, daemon=True)
        thread_a.start()
        thread_b = threading.Thread(target=sweep_b, daemon=True)
        thread_b.start()
        thread_b.join(timeout=60)
        thread_a.join(timeout=60)
        assert not thread_a.is_alive(), "sweep A never finished"
        assert not thread_b.is_alive(), "sweep B never finished"
        assert outcome["a"] == [0, 1]
        assert outcome["b"] == [0, 1]
