"""Property-based tests for symbolic mapped-variable algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import BasisStore
from repro.core.fingerprint import Fingerprint
from repro.core.mapping import AffineMapping
from repro.core.symbolic import MappedVariable

values = st.lists(
    st.floats(min_value=-100.0, max_value=100.0).map(lambda v: round(v, 3)),
    min_size=10,
    max_size=40,
)

alphas = st.floats(min_value=0.1, max_value=10.0).map(
    lambda a: round(a, 3)
).flatmap(lambda a: st.sampled_from([a, -a]))
betas = st.floats(min_value=-50.0, max_value=50.0).map(lambda v: round(v, 3))


def make_variable(samples, alpha, beta):
    store = BasisStore()
    basis = store.add(
        Fingerprint(tuple(samples[:10])), np.asarray(samples, dtype=float)
    )
    return MappedVariable.of(basis, AffineMapping(alpha, beta))


class TestAlgebraMatchesSamples:
    @given(samples=values, a1=alphas, b1=betas, a2=alphas, b2=betas)
    @settings(max_examples=100)
    def test_same_basis_sum(self, samples, a1, b1, a2, b2):
        store = BasisStore()
        basis = store.add(
            Fingerprint(tuple(samples[:10])),
            np.asarray(samples, dtype=float),
        )
        x = MappedVariable.of(basis, AffineMapping(a1, b1))
        y = MappedVariable.of(basis, AffineMapping(a2, b2))
        total = x + y
        assert isinstance(total, MappedVariable)
        np.testing.assert_allclose(
            total.samples(), x.samples() + y.samples(), rtol=1e-9, atol=1e-9
        )

    @given(samples=values, alpha=alphas, beta=betas, scalar=betas)
    @settings(max_examples=100)
    def test_scalar_ops(self, samples, alpha, beta, scalar):
        x = make_variable(samples, alpha, beta)
        array = x.samples()
        np.testing.assert_allclose((x + scalar).samples(), array + scalar)
        np.testing.assert_allclose((x - scalar).samples(), array - scalar)
        np.testing.assert_allclose(
            (x * 2.0).samples(), array * 2.0, rtol=1e-9
        )
        np.testing.assert_allclose((-x).samples(), -array)

    @given(samples=values, alpha=alphas, beta=betas)
    @settings(max_examples=100)
    def test_expectation_linearity(self, samples, alpha, beta):
        x = make_variable(samples, alpha, beta)
        array = np.asarray(samples, dtype=float)
        expected = alpha * array.mean() + beta
        assert abs(x.expectation() - expected) <= 1e-7 * max(
            abs(expected), 1.0
        )

    @given(samples=values, alpha=alphas, beta=betas, threshold=betas)
    @settings(max_examples=100)
    def test_probability_matches_empirical(
        self, samples, alpha, beta, threshold
    ):
        x = make_variable(samples, alpha, beta)
        empirical = float((x.samples() > threshold).mean())
        assert x.probability_greater(threshold) == empirical


class TestComparisonAntisymmetry:
    @given(samples=values, a1=alphas, b1=betas, a2=alphas, b2=betas)
    @settings(max_examples=80)
    def test_p_greater_plus_p_less_at_most_one(
        self, samples, a1, b1, a2, b2
    ):
        store = BasisStore()
        basis = store.add(
            Fingerprint(tuple(samples[:10])),
            np.asarray(samples, dtype=float),
        )
        x = MappedVariable.of(basis, AffineMapping(a1, b1))
        y = MappedVariable.of(basis, AffineMapping(a2, b2))
        forward = x.probability_greater(y)
        backward = y.probability_greater(x)
        assert 0.0 <= forward <= 1.0
        assert 0.0 <= backward <= 1.0
        # Ties (x == y in some worlds) make the sum fall below one.
        assert forward + backward <= 1.0 + 1e-9
