"""Stochastic black-box function protocol (paper sections 2.1 and 3.1).

A *black box* (the paper's simplified notion of an MCDB VG-Function) is a
stochastic function of a parameter point that produces one scalar sample per
invocation.  Jigsaw only ever interacts with black boxes by sampling, and it
makes them deterministic by supplying the pseudorandom seed explicitly:
``sample(params, seed)`` must be a pure function of ``(params, seed)``.

Markov-process models (section 4) additionally carry per-instance state; they
implement :class:`MarkovModel`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Tuple, Union

Params = Mapping[str, float]
ParamKey = Tuple[Tuple[str, float], ...]

Number = Union[int, float]


def param_key(params: Params) -> ParamKey:
    """Canonical hashable form of a parameter point (sorted name/value pairs)."""
    return tuple(sorted((str(k), float(v)) for k, v in params.items()))


class BlackBox(ABC):
    """A parameterized stochastic black-box function.

    Subclasses implement :meth:`_sample`; the public :meth:`sample` wrapper
    validates required parameters and counts invocations so benchmark
    harnesses can report machine-independent work.
    """

    #: Human-readable model name, e.g. ``"Demand"``.
    name: str = "BlackBox"

    #: Names of parameters the model requires in each ``params`` mapping.
    parameter_names: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self._invocations = 0

    @property
    def invocations(self) -> int:
        """Total number of samples drawn from this box since construction."""
        return self._invocations

    def reset_invocations(self) -> None:
        self._invocations = 0

    def sample(self, params: Params, seed: int) -> float:
        """Draw one sample at parameter point ``params`` using ``seed``.

        Deterministic: identical ``(params, seed)`` always yields the same
        value.  Raises ``KeyError`` if a required parameter is missing.
        """
        for name in self.parameter_names:
            if name not in params:
                raise KeyError(
                    f"{self.name} requires parameter {name!r}; "
                    f"got {sorted(params)}"
                )
        self._invocations += 1
        return float(self._sample(params, seed))

    @abstractmethod
    def _sample(self, params: Params, seed: int) -> float:
        """Model-specific sampling logic."""

    def __call__(self, params: Params, seed: int) -> float:
        return self.sample(params, seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class FunctionBlackBox(BlackBox):
    """Adapter turning a plain ``f(params, seed) -> float`` into a BlackBox."""

    def __init__(self, func, name: str = "", parameter_names: Tuple[str, ...] = ()):
        super().__init__()
        self._func = func
        self.name = name or getattr(func, "__name__", "FunctionBlackBox")
        self.parameter_names = parameter_names

    def _sample(self, params: Params, seed: int) -> float:
        return self._func(params, seed)


class MarkovModel(ABC):
    """A per-instance Markov process (paper section 4).

    The process evolves scalar per-instance state through discrete steps; the
    chain's randomness at (instance, step) comes from an externally supplied
    seed, keeping every trajectory reproducible.  ``output`` projects a state
    to the observable value that fingerprints compare.
    """

    name: str = "MarkovModel"

    def __init__(self) -> None:
        self._step_invocations = 0

    @property
    def step_invocations(self) -> int:
        """Number of single-instance step evaluations performed."""
        return self._step_invocations

    def reset_invocations(self) -> None:
        self._step_invocations = 0

    @abstractmethod
    def initial_state(self) -> float:
        """State every instance starts from at step 0."""

    def step(self, state: float, step_index: int, seed: int) -> float:
        """Advance one instance one step; deterministic in all arguments."""
        self._step_invocations += 1
        return float(self._step(state, step_index, seed))

    @abstractmethod
    def _step(self, state: float, step_index: int, seed: int) -> float:
        """Model-specific transition logic."""

    def output(self, state: float, step_index: int) -> float:
        """Observable value of a state (defaults to the state itself)."""
        return state

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class BlackBoxRegistry:
    """Name → black box lookup used by the query-language binder."""

    def __init__(self) -> None:
        self._boxes: Dict[str, BlackBox] = {}

    def register(self, box: BlackBox, name: Optional[str] = None) -> None:
        key = (name or box.name).lower()
        if key in self._boxes:
            raise ValueError(f"black box {key!r} already registered")
        self._boxes[key] = box

    def lookup(self, name: str) -> BlackBox:
        try:
            return self._boxes[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._boxes)) or "(none)"
            raise KeyError(
                f"unknown black box {name!r}; registered: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._boxes

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._boxes))
