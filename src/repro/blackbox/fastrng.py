"""Vectorized replication of the per-seed pseudorandom streams.

The scalar sampling path builds one ``numpy.random.Generator`` per
``(seed)`` — ~10µs of construction to draw one or two variates.  This
module replays the *same* stream with array arithmetic so a whole seed bank
is seeded and drawn in a handful of numpy operations:

* :func:`seedseq_state4` — ``numpy.random.SeedSequence(seed)`` pool mixing
  and state generation, vectorized over seeds;
* :func:`pcg64_init` / :func:`pcg64_next64` — the PCG64 (setseq-128,
  XSL-RR output) state initialization and 64-bit output step, with the
  128-bit arithmetic decomposed into uint64 halves;
* :func:`draw_matrix` — the first ``len(kinds)`` standard draws
  (uniform / normal / exponential) of every seed's stream, using the
  ziggurat acceptance fast path (tables in
  :mod:`repro.blackbox.ziggurat_tables`) and falling back to a real
  per-seed ``Generator`` for the rare rejection lanes.

Bit-exactness contract: every value produced here is verified to equal the
scalar :class:`repro.blackbox.rng.DeterministicRng` output.  A self-test
(:func:`fast_path_available`) runs once per *backend instance* — the block
fill itself routes through the pluggable compute seam
(:mod:`repro.core.backend`), and the self-test outcome lives on the
backend instance rather than a module global, so one surprising host (or
one lying accelerated kernel) degrades that instance to the per-seed
``Generator`` path — with a ``RuntimeWarning``, exactly once — without
leaking the degrade across unrelated stores, tests, or backends.
:func:`fast_path_status` exposes the state; :func:`reset_fast_path`
re-arms it (test-only).
"""

from __future__ import annotations

import warnings
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.blackbox import ziggurat_tables as _zt
from repro.core.backend import BackendArg, resolve_backend
from repro.core.seeds import derive_seed_array

# Standard-draw kind names used throughout the batch sampling paths.
KIND_UNIFORM = "uniform"
KIND_NORMAL = "normal"
KIND_EXPONENTIAL = "exponential"

_U64 = np.uint64
_MASK32 = _U64(0xFFFFFFFF)
_MASK52 = _U64((1 << 52) - 1)

# --- SeedSequence constants (numpy.random.bit_generator) -------------------
_INIT_A = np.uint32(0x43B0D7E5)
_MULT_A = np.uint32(0x931E8875)
_INIT_B = np.uint32(0x8B51F9DD)
_MULT_B = np.uint32(0x58F38DED)
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_XSHIFT = np.uint32(16)
_POOL_SIZE = 4

# --- PCG64 constants --------------------------------------------------------
_PCG_MULT_HI = _U64(2549297995355413924)
_PCG_MULT_LO = _U64(4865540595714422341)

_INV_2_53 = 1.0 / 9007199254740992.0


def _hashmix(value: np.ndarray, hash_const: int) -> Tuple[np.ndarray, int]:
    """SeedSequence ``hashmix``: scramble ``value``, evolve the constant."""
    value = value ^ np.uint32(hash_const)
    hash_const = (hash_const * int(_MULT_A)) & 0xFFFFFFFF
    value = (value * np.uint32(hash_const)).astype(np.uint32)
    value ^= value >> _XSHIFT
    return value, hash_const


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """SeedSequence ``mix``: subtractive combine (matches numpy exactly)."""
    result = (x * _MIX_MULT_L).astype(np.uint32)
    result = (result - (y * _MIX_MULT_R).astype(np.uint32)).astype(np.uint32)
    result ^= result >> _XSHIFT
    return result


def seedseq_state4(seeds: np.ndarray) -> np.ndarray:
    """``SeedSequence(seed).generate_state(4, uint64)`` for an array of seeds.

    Supports plain integer entropy (0 <= seed < 2**64, no spawn key), which
    is the only form the repository uses.
    """
    seeds = np.atleast_1d(np.asarray(seeds, dtype=np.uint64))
    n = seeds.shape[0]
    lo = (seeds & _MASK32).astype(np.uint32)
    hi = (seeds >> _U64(32)).astype(np.uint32)

    pool = np.empty((_POOL_SIZE, n), dtype=np.uint32)
    hash_const = int(_INIT_A)
    # A 1-word seed hashes 0 where a 2-word seed hashes its high word; the
    # high word of a 1-word seed *is* 0, so one lane formula covers both.
    pool[0], hash_const = _hashmix(lo, hash_const)
    pool[1], hash_const = _hashmix(hi, hash_const)
    zeros = np.zeros(n, dtype=np.uint32)
    pool[2], hash_const = _hashmix(zeros, hash_const)
    pool[3], hash_const = _hashmix(zeros.copy(), hash_const)
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                hashed, hash_const = _hashmix(pool[i_src].copy(), hash_const)
                pool[i_dst] = _mix(pool[i_dst], hashed)

    words = np.empty((8, n), dtype=np.uint64)
    hash_const = int(_INIT_B)
    for out_idx in range(8):
        data = pool[out_idx % _POOL_SIZE].copy()
        data ^= np.uint32(hash_const)
        hash_const = (hash_const * int(_MULT_B)) & 0xFFFFFFFF
        data = (data * np.uint32(hash_const)).astype(np.uint32)
        data ^= data >> _XSHIFT
        words[out_idx] = data
    state = np.empty((4, n), dtype=np.uint64)
    for k in range(4):
        state[k] = words[2 * k] | (words[2 * k + 1] << _U64(32))
    return state


def _mul64(a: np.ndarray, b_hi: int, b_lo: int) -> Tuple[np.ndarray, np.ndarray]:
    """Full 128-bit product of a uint64 array with a uint64 constant.

    Returns (high, low) halves; the constant is passed pre-split into
    32-bit limbs via ``b_hi``/``b_lo`` callers compute once.
    """
    a_lo = a & _MASK32
    a_hi = a >> _U64(32)
    b_lo_u = _U64(b_lo)
    b_hi_u = _U64(b_hi)
    ll = a_lo * b_lo_u
    lh = a_lo * b_hi_u
    hl = a_hi * b_lo_u
    hh = a_hi * b_hi_u
    mid = (ll >> _U64(32)) + (lh & _MASK32) + (hl & _MASK32)
    low = (ll & _MASK32) | ((mid & _MASK32) << _U64(32))
    high = hh + (lh >> _U64(32)) + (hl >> _U64(32)) + (mid >> _U64(32))
    return high, low


def _mul128(
    x_hi: np.ndarray, x_lo: np.ndarray, m_hi: _U64, m_lo: _U64
) -> Tuple[np.ndarray, np.ndarray]:
    """(x_hi:x_lo) * (m_hi:m_lo) mod 2**128 as uint64 half arrays."""
    m_lo_lo = int(m_lo) & 0xFFFFFFFF
    m_lo_hi = int(m_lo) >> 32
    prod_hi, prod_lo = _mul64(x_lo, m_lo_hi, m_lo_lo)
    # Cross terms only contribute to the high half mod 2**128.
    prod_hi = prod_hi + x_lo * m_hi + x_hi * m_lo
    return prod_hi, prod_lo


def _add128(
    x_hi: np.ndarray, x_lo: np.ndarray, y_hi: np.ndarray, y_lo: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    low = x_lo + y_lo
    carry = (low < x_lo).astype(np.uint64)
    return x_hi + y_hi + carry, low


def pcg64_init(
    state4: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """PCG64 ``srandom`` seeding from 4 SeedSequence words per lane.

    Returns (state_hi, state_lo, inc_hi, inc_lo).
    """
    init_hi, init_lo = state4[0], state4[1]
    seq_hi, seq_lo = state4[2], state4[3]
    inc_hi = (seq_hi << _U64(1)) | (seq_lo >> _U64(63))
    inc_lo = (seq_lo << _U64(1)) | _U64(1)
    # state = 0; step; state += initstate; step
    state_hi, state_lo = _step128(
        np.zeros_like(init_hi), np.zeros_like(init_lo), inc_hi, inc_lo
    )
    state_hi, state_lo = _add128(state_hi, state_lo, init_hi, init_lo)
    state_hi, state_lo = _step128(state_hi, state_lo, inc_hi, inc_lo)
    return state_hi, state_lo, inc_hi, inc_lo


def _step128(
    state_hi: np.ndarray,
    state_lo: np.ndarray,
    inc_hi: np.ndarray,
    inc_lo: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """One LCG step: state = state * PCG_MULT + inc (mod 2**128)."""
    hi, lo = _mul128(state_hi, state_lo, _PCG_MULT_HI, _PCG_MULT_LO)
    return _add128(hi, lo, inc_hi, inc_lo)


def pcg64_next64(
    state_hi: np.ndarray,
    state_lo: np.ndarray,
    inc_hi: np.ndarray,
    inc_lo: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Advance every lane one step; return (state_hi, state_lo, output)."""
    state_hi, state_lo = _step128(state_hi, state_lo, inc_hi, inc_lo)
    rot = state_hi >> _U64(58)
    xored = state_hi ^ state_lo
    out = (xored >> rot) | (xored << ((_U64(64) - rot) & _U64(63)))
    return state_hi, state_lo, out


def raw_block(rng_seeds: np.ndarray, count: int) -> np.ndarray:
    """First ``count`` raw 64-bit outputs of every seed's generator.

    ``rng_seeds`` are :class:`DeterministicRng`-level seeds; the internal
    ``derive_seed`` salting is applied here, exactly as the scalar path does.
    """
    rng_seeds = np.atleast_1d(np.asarray(rng_seeds, dtype=np.uint64))
    state4 = seedseq_state4(derive_seed_array(rng_seeds))
    s_hi, s_lo, i_hi, i_lo = pcg64_init(state4)
    out = np.empty((count, rng_seeds.shape[0]), dtype=np.uint64)
    for j in range(count):
        s_hi, s_lo, out[j] = pcg64_next64(s_hi, s_lo, i_hi, i_lo)
    return out


def _uniform_from_raw(raw: np.ndarray) -> np.ndarray:
    return (raw >> _U64(11)).astype(np.float64) * _INV_2_53


def _normal_from_raw(raw: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Ziggurat accept-path standard normal; returns (values, accepted)."""
    idx = (raw & _U64(0xFF)).astype(np.intp)
    sign = (raw >> _U64(8)) & _U64(1)
    rabs = (raw >> _U64(9)) & _MASK52
    x = rabs.astype(np.float64) * _zt.WI_NORMAL[idx]
    x = np.where(sign.astype(bool), -x, x)
    accepted = rabs < _zt.KI_NORMAL[idx]
    return x, accepted


def _exponential_from_raw(raw: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Ziggurat accept-path standard exponential; returns (values, accepted)."""
    ri = raw >> _U64(3)
    idx = (ri & _U64(0xFF)).astype(np.intp)
    m = ri >> _U64(8)
    x = m.astype(np.float64) * _zt.WE_EXP[idx]
    accepted = m < _zt.KE_EXP[idx]
    return x, accepted


_KIND_RAW = {
    KIND_UNIFORM: lambda raw: (_uniform_from_raw(raw), None),
    KIND_NORMAL: _normal_from_raw,
    KIND_EXPONENTIAL: _exponential_from_raw,
}


def _scalar_standard_draw(generator: np.random.Generator, kind: str) -> float:
    if kind == KIND_UNIFORM:
        return float(generator.random())
    if kind == KIND_NORMAL:
        return float(generator.standard_normal())
    if kind == KIND_EXPONENTIAL:
        return float(generator.standard_exponential())
    raise ValueError(f"unknown standard draw kind {kind!r}")


def scalar_draw_row(rng_seed: int, kinds: Sequence[str]) -> np.ndarray:
    """One seed's standard draws via a real ``Generator`` (reference path)."""
    from repro.core.seeds import derive_seed

    generator = np.random.Generator(
        np.random.PCG64(derive_seed(int(rng_seed)))
    )
    return np.array(
        [_scalar_standard_draw(generator, kind) for kind in kinds],
        dtype=np.float64,
    )


def _draw_matrix_scalar(seeds: np.ndarray, kinds: Tuple[str, ...]) -> np.ndarray:
    return np.array(
        [scalar_draw_row(int(seed), kinds) for seed in seeds],
        dtype=np.float64,
    ).reshape(len(seeds), len(kinds))


def fast_path_available(backend: BackendArg = None) -> bool:
    """Self-test the vectorized stream against the host numpy, once per
    backend instance.

    Compares :func:`draw_matrix`'s vector path — routed through the given
    (default: process-active) compute backend — to per-seed ``Generator``
    output over a spread of seeds (including ziggurat-rejection lanes).
    On any mismatch *that backend instance* permanently falls back to the
    scalar path with one ``RuntimeWarning``, so batch sampling can never
    silently diverge from the scalar contract; other instances (other
    stores, other tests) are untouched.
    """
    backend = resolve_backend(backend)
    if backend._fast_path_ok is None:
        probe = np.array(
            [0, 1, 7, 12345, 2**31, 2**52 + 3, 2**63 + 11, 2**64 - 1]
            + list(range(100, 164)),
            dtype=np.uint64,
        )
        kinds = (KIND_NORMAL, KIND_EXPONENTIAL, KIND_UNIFORM, KIND_NORMAL)
        try:
            fast = _draw_matrix_vector(probe, kinds, backend)
            reference = _draw_matrix_scalar(probe, kinds)
            ok = bool(
                fast.shape == reference.shape
                and np.array_equal(fast, reference)
            )
        except Exception:
            ok = False
        backend._fast_path_ok = ok
        if not ok and not backend._fast_path_warned:
            backend._fast_path_warned = True
            warnings.warn(
                f"vectorized standard-draw stream disagreed with the "
                f"per-seed Generator reference on backend "
                f"{backend.name!r}; falling back to the scalar draw path "
                f"for this backend instance",
                RuntimeWarning,
            )
    return backend._fast_path_ok


def fast_path_status(backend: BackendArg = None) -> Dict[str, object]:
    """Introspect one backend instance's draw fast-path state.

    Returns ``{"backend": <describe()>, "fast_path": "ok" | "degraded" |
    "untested", "degraded_kernels": (...)}`` — the hook the old module
    global never offered, so tests and ``repro store info`` can tell a
    healthy accelerated run from a silently-degraded one.
    """
    backend = resolve_backend(backend)
    if backend._fast_path_ok is None:
        state = "untested"
    elif backend._fast_path_ok:
        state = "ok"
    else:
        state = "degraded"
    return {
        "backend": backend.describe(),
        "fast_path": state,
        "degraded_kernels": backend.degraded_kernels(),
    }


def reset_fast_path(backend: BackendArg = None) -> None:
    """Re-arm one backend instance's self-test and kernel verification.

    Test-only: production code never un-degrades an instance.  The next
    :func:`draw_matrix` call re-runs the self-test (and the backend
    layer's first-N kernel cross-checks) from scratch, and a repeated
    failure warns again — the warn-once latch resets with the state.
    """
    resolve_backend(backend).reset_verification()


def _vector_draw_block(
    seeds: np.ndarray, kinds: Tuple[str, ...]
) -> Tuple[np.ndarray, np.ndarray]:
    """Numpy reference block fill: accept-chain ziggurat over lockstep
    stream positions.

    Returns ``(out, ok)`` — ``ok[i]`` is False where some draw consumed
    more than one raw output (a ziggurat rejection), meaning row ``i``
    must be replayed through a real per-seed ``Generator``.  This is the
    ``draw_block`` kernel every compute backend must reproduce bitwise.
    """
    raw = raw_block(seeds, len(kinds))
    n = seeds.shape[0]
    out = np.empty((n, len(kinds)), dtype=np.float64)
    ok = np.ones(n, dtype=bool)
    for j, kind in enumerate(kinds):
        values, accepted = _KIND_RAW[kind](raw[j])
        out[:, j] = values
        if accepted is not None:
            ok &= accepted
    return out, ok


def _draw_matrix_vector(
    seeds: np.ndarray,
    kinds: Tuple[str, ...],
    backend: BackendArg = None,
) -> np.ndarray:
    """Vector path: backend block fill plus scalar rejection patch-up.

    A lane stays on the vector path while every draw so far consumed exactly
    one raw output (always true for uniforms, ~98.5% per normal/exponential
    draw); the rest replay through a real per-seed ``Generator``.
    """
    out, ok = resolve_backend(backend).draw_block(seeds, kinds)
    for i in np.nonzero(~ok)[0]:
        out[i] = scalar_draw_row(int(seeds[i]), kinds)
    return out


def draw_matrix(
    rng_seeds: np.ndarray,
    kinds: Sequence[str],
    backend: BackendArg = None,
) -> np.ndarray:
    """Standard draws ``(len(rng_seeds), len(kinds))`` of every seed's stream.

    Entry ``[i, j]`` equals the j-th standard draw a fresh
    ``DeterministicRng(rng_seeds[i])`` would produce when asked for the kind
    sequence ``kinds`` — the shared standard draws every location-scale
    variate in the system is an affine function of.  ``backend`` selects
    the compute backend for the block fill (default: the process-active
    one); every backend returns the same bits or degrades trying.
    """
    seeds = np.atleast_1d(np.asarray(rng_seeds, dtype=np.uint64))
    kinds = tuple(kinds)
    for kind in kinds:
        if kind not in _KIND_RAW:
            raise ValueError(f"unknown standard draw kind {kind!r}")
    if not kinds:
        return np.empty((seeds.shape[0], 0), dtype=np.float64)
    backend = resolve_backend(backend)
    if fast_path_available(backend):
        return _draw_matrix_vector(seeds, kinds, backend)
    return _draw_matrix_scalar(seeds, kinds)


def first_uniforms(rng_seeds: np.ndarray) -> np.ndarray:
    """First standard-uniform draw of every seed's stream."""
    return draw_matrix(rng_seeds, (KIND_UNIFORM,))[:, 0]


def first_normals(rng_seeds: np.ndarray) -> np.ndarray:
    """First standard-normal draw of every seed's stream."""
    return draw_matrix(rng_seeds, (KIND_NORMAL,))[:, 0]
