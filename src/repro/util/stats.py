"""Streaming and batch statistics helpers.

The Jigsaw estimator (paper section 2.3) aggregates i.i.d. Monte Carlo samples
into summary metrics.  :class:`RunningStats` provides a numerically stable
(Welford) accumulator so samples can be streamed without retaining them, which
the interactive engine (section 5) relies on for progressive refinement.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np


class RunningStats:
    """Welford-style running mean / variance / extrema accumulator."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold a single sample into the accumulator."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._minimum:
            self._minimum = value
        if value > self._maximum:
            self._maximum = value

    def add_many(self, values: Iterable[float]) -> None:
        """Fold every sample in ``values`` into the accumulator."""
        for value in values:
            self.add(value)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to seeing both sample sets."""
        if other._count == 0:
            return self.copy()
        if self._count == 0:
            return other.copy()
        merged = RunningStats()
        merged._count = self._count + other._count
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other._count / merged._count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self._count * other._count / merged._count
        )
        merged._minimum = min(self._minimum, other._minimum)
        merged._maximum = max(self._maximum, other._maximum)
        return merged

    def copy(self) -> "RunningStats":
        dup = RunningStats()
        dup._count = self._count
        dup._mean = self._mean
        dup._m2 = self._m2
        dup._minimum = self._minimum
        dup._maximum = self._maximum
        return dup

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("mean of empty RunningStats")
        return self._mean

    @property
    def variance(self) -> float:
        """Population variance of the samples seen so far."""
        if self._count == 0:
            raise ValueError("variance of empty RunningStats")
        return self._m2 / self._count

    @property
    def sample_variance(self) -> float:
        """Unbiased (n-1) sample variance."""
        if self._count < 2:
            raise ValueError("sample variance needs at least two samples")
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError("minimum of empty RunningStats")
        return self._minimum

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError("maximum of empty RunningStats")
        return self._maximum


def quantiles(
    samples: Sequence[float], probabilities: Sequence[float]
) -> List[float]:
    """Linear-interpolation quantiles of ``samples`` at ``probabilities``."""
    if len(samples) == 0:
        raise ValueError("quantiles of an empty sample set")
    for p in probabilities:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile probability {p} outside [0, 1]")
    array = np.asarray(samples, dtype=float)
    return [float(q) for q in np.quantile(array, probabilities)]


def histogram(
    samples: Sequence[float], bins: int = 10
) -> Tuple[List[int], List[float]]:
    """Equi-width histogram: (counts, bin edges), ``bins + 1`` edges."""
    if len(samples) == 0:
        raise ValueError("histogram of an empty sample set")
    if bins < 1:
        raise ValueError("histogram needs at least one bin")
    counts, edges = np.histogram(np.asarray(samples, dtype=float), bins=bins)
    return [int(c) for c in counts], [float(e) for e in edges]
