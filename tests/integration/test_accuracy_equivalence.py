"""Integration tests for the paper's section 6.2 accuracy claim.

"Outputs of Jigsaw are equivalent to full simulation for each possible
parameter value."  For mapping families that carry full information (linear
over continuous outputs) this equivalence is exact; for boolean outputs the
fingerprint has finite resolution (m draws), so reuse can merge points whose
probabilities differ by less than the fingerprint can distinguish — the test
bounds that error instead.
"""


from repro.bench.workloads import (
    capacity_workload,
    demand_workload,
    overload_workload,
    user_selection_workload,
)
from repro.blackbox.base import param_key
from repro.core.basis import BasisStore
from repro.core.explorer import NaiveExplorer, ParameterExplorer
from repro.core.mapping import IdentityMappingFamily


def explore_both(workload, samples, mapping_family=None):
    simulation = workload.simulation()
    store = (
        BasisStore(mapping_family=mapping_family)
        if mapping_family is not None
        else None
    )
    explorer = ParameterExplorer(
        simulation,
        samples_per_point=samples,
        fingerprint_size=10,
        basis_store=store,
    )
    naive = NaiveExplorer(simulation, samples_per_point=samples)
    return explorer.run(workload.points), naive.run(workload.points)


class TestExactEquivalence:
    def test_demand(self):
        workload = demand_workload(weeks=10, features=(3.0, 7.0))
        jigsaw, naive = explore_both(workload, samples=60)
        for point in workload.points:
            assert jigsaw.metrics(point).approx_equals(
                naive[param_key(point)], rel_tol=1e-8
            ), point

    def test_capacity_outside_transients(self):
        """Away from purchase structures, Capacity points are exactly
        equivalent; inside a structure the per-seed online indicators give
        the fingerprint finite resolution (same error source the paper
        acknowledges in section 6.2 and reports as never significant)."""
        workload = capacity_workload(weeks=8, purchase_step=4)
        jigsaw, naive = explore_both(workload, samples=50)
        structure = workload.box.structure_size
        for point in workload.points:
            distances = [
                point["current_week"] - p
                for p in (point["purchase1"], point["purchase2"])
            ]
            in_transient = any(0.0 <= d <= 6.0 * structure for d in distances)
            if not in_transient:
                assert jigsaw.metrics(point).approx_equals(
                    naive[param_key(point)], rel_tol=1e-8
                ), point

    def test_capacity_transient_error_bounded(self):
        """Inside transients, reuse error is bounded by the purchase volume
        scaled by the fingerprint's resolution."""
        workload = capacity_workload(weeks=8, purchase_step=4)
        jigsaw, naive = explore_both(workload, samples=50)
        bound = workload.box.purchase_volume * (3.0 / 10)
        for point in workload.points:
            error = abs(
                jigsaw.metrics(point).expectation
                - naive[param_key(point)].expectation
            )
            assert error <= bound, (point, error)

    def test_capacity_unreused_points_exact(self):
        workload = capacity_workload(weeks=8, purchase_step=4)
        jigsaw, naive = explore_both(workload, samples=50)
        for point in workload.points:
            outcome = jigsaw.result(point)
            if not outcome.reused:
                assert outcome.metrics.approx_equals(
                    naive[param_key(point)], rel_tol=1e-8
                ), point

    def test_user_selection(self):
        workload = user_selection_workload(weeks=3, user_count=40)
        jigsaw, naive = explore_both(workload, samples=40)
        for point in workload.points:
            assert jigsaw.metrics(point).approx_equals(
                naive[param_key(point)], rel_tol=1e-8
            ), point


class TestBooleanResolutionBound:
    def test_overload_error_bounded_by_fingerprint_resolution(self):
        """Identity-matched boolean points differ by less than what an
        m-sample 0/1 fingerprint can resolve; the expectation error of reuse
        stays within a few multiples of 1/m."""
        workload = overload_workload(weeks=10, purchase_step=5)
        jigsaw, naive = explore_both(
            workload, samples=120, mapping_family=IdentityMappingFamily()
        )
        m = 10
        for point in workload.points:
            error = abs(
                jigsaw.metrics(point).expectation
                - naive[param_key(point)].expectation
            )
            assert error <= 3.0 / m, (point, error)

    def test_unreused_boolean_points_are_exact(self):
        workload = overload_workload(weeks=10, purchase_step=5)
        jigsaw, naive = explore_both(
            workload, samples=60, mapping_family=IdentityMappingFamily()
        )
        for point in workload.points:
            outcome = jigsaw.result(point)
            if not outcome.reused:
                assert outcome.metrics.approx_equals(
                    naive[param_key(point)], rel_tol=1e-8
                )
