"""Shard supervision: deadlines, typed failures, retries, degradation.

:mod:`repro.core.parallel` made sweeps shardable; this module makes the
fan-out survivable.  A bare ``pool.map`` turns one dead worker (OOM kill,
segfault in a native library, stray SIGKILL) into an opaque
``BrokenProcessPool`` that discards *every* shard's work, lets a hung
worker stall a sweep forever, and gives an interrupted multi-hour run
nothing to resume from.  The supervisor replaces it with per-shard
attempts carrying deadlines and a typed failure taxonomy:

* **Crash** (:class:`~repro.errors.ShardCrashError`) — the worker died
  before shipping its result.  Retried on a rebuilt pool.
* **Timeout** (:class:`~repro.errors.ShardTimeoutError`) — an attempt
  outlived ``policy.timeout``.  The stuck pool is abandoned (workers
  terminated), innocent in-flight shards are resubmitted on a fresh pool
  without consuming one of their attempts, and the expired shard retries.
* **Exhaustion** (:class:`~repro.errors.ShardRetryExhaustedError`) — a
  shard failed every attempt the policy allows.  With ``degrade`` on (the
  default) the shard is recomputed **in-process, serially** as the last
  resort, so a sweep *always* completes; with it off, the typed error
  propagates.

Retries back off exponentially (``backoff_base * backoff_factor**(n-1)``,
capped at ``backoff_cap``) and re-run the shard's **exact slice against a
fresh store** — shards are pure functions of ``(context, index)`` under
the shared seed bank, so a retried or degraded shard returns bit-identical
records and the canonical replay-merge stays bit-identical to the serial
sweep no matter what failed, how often, or where it finally ran.  That is
the headline invariant, pinned by the chaos suite
(``tests/integration/test_fault_tolerance.py``).

Deterministic application exceptions raised *by* a shard are not retried:
by the same purity argument a re-run would fail identically, so they
propagate immediately, exactly as they did under the bare ``pool.map``.

All deadline and backoff arithmetic reads the injectable clock
(:func:`repro.util.timing.perf_counter`) and an injectable ``sleep``, and
result collection consults the active fault plan
(:mod:`repro.testing.faults`), so every path above is exercised by unit
tests with fake time and scripted faults — no real signals, no real
clocks.  On the happy path the supervisor never reads the clock at all,
keeping fake-clock timing tests undisturbed.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import (
    ExecutionError,
    ShardCrashError,
    ShardError,
    ShardRetryExhaustedError,
    ShardTimeoutError,
)
from repro.testing import faults as _faults
from repro.util import timing


@dataclass(frozen=True)
class SupervisionPolicy:
    """Retry/timeout/degrade knobs for one supervised fan-out.

    ``max_attempts`` counts the first run: 3 means one run plus two
    retries.  ``timeout`` is the per-attempt deadline in seconds (``None``
    disables deadlines).  ``degrade`` keeps sweeps total: an exhausted
    shard is recomputed in-process instead of failing the sweep.
    ``poll_interval`` is the supervisor's wait granularity while shards
    are in flight.
    """

    max_attempts: int = 3
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    degrade: bool = True
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be at least 1")
        if self.backoff_cap < 0:
            raise ValueError("backoff_cap must be non-negative")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")

    def backoff(self, attempt: int) -> float:
        """Delay before the retry that follows failed attempt ``attempt``."""
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )


#: The default applied by ``fork_map`` when callers pass no policy: retry
#: infrastructure failures twice with short backoff, no deadline (a
#: deadline only makes sense relative to a workload), degrade rather than
#: fail.  On the happy path this is behaviorally identical to (and costs
#: nothing over) the old bare fan-out.
DEFAULT_POLICY = SupervisionPolicy()


@dataclass
class ShardReport:
    """Supervision history of one shard: attempts, failures, outcome."""

    index: int
    attempts: int = 0
    failures: List[ShardError] = field(default_factory=list)
    degraded: bool = False


@dataclass
class SupervisionReport:
    """What supervision did for one fan-out (all shards)."""

    policy: SupervisionPolicy
    shards: Dict[int, ShardReport] = field(default_factory=dict)
    backoff_delays: List[float] = field(default_factory=list)
    pools_rebuilt: int = 0

    @property
    def retries(self) -> int:
        return sum(max(0, s.attempts - 1) for s in self.shards.values())

    @property
    def failures(self) -> int:
        return sum(len(s.failures) for s in self.shards.values())

    @property
    def degraded_shards(self) -> Tuple[int, ...]:
        return tuple(
            sorted(i for i, s in self.shards.items() if s.degraded)
        )


@dataclass
class _Flight:
    """One in-flight shard attempt.

    ``future`` is ``None`` once an injected hang swallowed the worker's
    result: the attempt then has no completion path and only its deadline
    can end it — exactly the observable behavior of a truly hung worker.
    """

    index: int
    attempt: int
    deadline: Optional[float]
    future: Optional[Any]


class WorkerPool:
    """Protocol for the pools the supervisor drives (duck-typed).

    ``submit(index)`` returns a ``concurrent.futures.Future`` for one
    shard attempt; ``abandon()`` kills the pool without waiting (used when
    workers are stuck or broken); ``close()`` shuts it down cleanly.
    """

    def submit(self, index: int):  # pragma: no cover - protocol only
        raise NotImplementedError

    def abandon(self) -> None:  # pragma: no cover - protocol only
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - protocol only
        raise NotImplementedError


class ShardSupervisor:
    """Runs shard attempts under a :class:`SupervisionPolicy`.

    ``runner``/``context`` follow the ``fork_map`` contract: shard ``i``'s
    result is ``runner(context, i)``, a pure function of its arguments.
    ``pool_factory`` builds a :class:`WorkerPool` for parallel execution
    (and rebuilds it after crashes/timeouts); ``None`` executes shards
    in-process, sequentially, in ``indices`` order — the same code path
    retried/degraded shards take.  ``on_shard_complete(index, value)``
    fires as each shard's result is accepted (checkpoint writers hook in
    here).  ``clock``/``sleep`` default to the injectable
    :func:`repro.util.timing.perf_counter` and :func:`time.sleep`.
    """

    def __init__(
        self,
        runner: Callable[[Any, int], Any],
        context: Any,
        indices: Sequence[int],
        policy: Optional[SupervisionPolicy] = None,
        *,
        pool_factory: Optional[Callable[[], WorkerPool]] = None,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
        on_shard_complete: Optional[Callable[[int, Any], None]] = None,
    ):
        self._runner = runner
        self._context = context
        self._indices = [int(i) for i in indices]
        if len(set(self._indices)) != len(self._indices):
            raise ValueError("shard indices must be unique")
        self._policy = policy or DEFAULT_POLICY
        self._pool_factory = pool_factory
        self._clock = clock if clock is not None else timing.perf_counter
        self._sleep = sleep if sleep is not None else time.sleep
        self._on_complete = on_shard_complete
        self.report = SupervisionReport(
            policy=self._policy,
            shards={i: ShardReport(i) for i in self._indices},
        )
        self._results: Dict[int, Any] = {}
        #: (ready_at, index, attempt) — retries waiting out their backoff.
        self._retry_heap: List[Tuple[float, int, int]] = []
        self._exhausted: List[int] = []

    # -- shared machinery ---------------------------------------------------

    def run(self) -> Dict[int, Any]:
        """Execute every shard; returns ``{index: result}`` (all present)."""
        if not self._indices:
            return {}
        if self._pool_factory is None:
            self._run_inline()
        else:
            self._run_pooled()
        self._run_degraded()
        return dict(self._results)

    def _execute(self, index: int, attempt: int) -> Any:
        """One in-process attempt, through the fault seam."""
        value = self._runner(self._context, index)
        plan = _faults.active_plan()
        if plan is not None:
            plan.intercept(index, attempt)
        return value

    def _accept(self, index: int, value: Any, degraded: bool = False) -> None:
        self._results[index] = value
        if degraded:
            self.report.shards[index].degraded = True
        if self._on_complete is not None:
            self._on_complete(index, value)

    def _record_backoff(self, attempt: int) -> float:
        delay = self._policy.backoff(attempt)
        self.report.backoff_delays.append(delay)
        return delay

    def _exhaust(self, index: int) -> None:
        shard = self.report.shards[index]
        if not self._policy.degrade:
            last = shard.failures[-1] if shard.failures else None
            raise ShardRetryExhaustedError(
                f"shard {index} failed all {shard.attempts} attempt(s); "
                f"last failure: {last}",
                shard_index=index,
                attempts=shard.attempts,
                failures=shard.failures,
            )
        self._exhausted.append(index)

    def _run_degraded(self) -> None:
        """Last resort: recompute exhausted shards in-process, serially.

        Runs outside the pool and outside the fault plan — determinism
        makes the result identical to a first-attempt success, merely
        slower — so a sweep with ``degrade`` on always completes.
        """
        for index in sorted(self._exhausted):
            self._accept(
                index, self._runner(self._context, index), degraded=True
            )

    # -- in-process execution ----------------------------------------------

    def _run_inline(self) -> None:
        for index in self._indices:
            shard = self.report.shards[index]
            attempt = 1
            while True:
                shard.attempts = attempt
                try:
                    value = self._execute(index, attempt)
                except _faults.InjectedCrash as error:
                    failure: ShardError = ShardCrashError(
                        f"shard {index} worker died before shipping its "
                        f"result ({error})",
                        shard_index=index,
                        attempt=attempt,
                    )
                except _faults.InjectedHang:
                    # In-process execution enforces no real deadline; an
                    # injected hang classifies directly as a timeout.
                    failure = ShardTimeoutError(
                        f"shard {index} attempt {attempt} exceeded its "
                        f"deadline",
                        shard_index=index,
                        attempt=attempt,
                        timeout=self._policy.timeout,
                    )
                else:
                    self._accept(index, value)
                    break
                shard.failures.append(failure)
                if attempt >= self._policy.max_attempts:
                    self._exhaust(index)
                    break
                delay = self._record_backoff(attempt)
                if delay > 0:
                    self._sleep(delay)
                attempt += 1

    # -- pooled execution ---------------------------------------------------

    def _run_pooled(self) -> None:
        assert self._pool_factory is not None
        pool = self._pool_factory()
        try:
            pool = self._pooled_loop(pool)
        except BaseException:
            # Abandon rather than close: a clean shutdown would wait on
            # workers that may be stuck, and on KeyboardInterrupt the user
            # wants out *now* (completed shards are already checkpointed
            # by the on-complete hook).
            pool.abandon()
            raise
        pool.close()

    def _pooled_loop(self, pool: WorkerPool) -> WorkerPool:
        pending = deque((index, 1) for index in self._indices)
        flights: List[_Flight] = []
        while pending or flights or self._retry_heap:
            self._promote_retries(pending)
            while pending:
                index, attempt = pending.popleft()
                self.report.shards[index].attempts = attempt
                flights.append(self._launch(pool, index, attempt))
            if not flights:
                self._wait_for_retry()
                continue
            done = self._await_any(flights)
            pool_broken = False
            survivors: List[_Flight] = []
            for flight in flights:
                if flight.future is not None and flight.future in done:
                    outcome = self._collect(flight)
                    if outcome == "broken":
                        pool_broken = True
                    elif outcome == "hung":
                        survivors.append(flight)
                else:
                    survivors.append(flight)
            flights = survivors
            if pool_broken:
                pool = self._rebuild(pool, flights)
            flights, pool = self._sweep_deadlines(flights, pool)
        return pool

    def _launch(self, pool: WorkerPool, index: int, attempt: int) -> _Flight:
        deadline = None
        if self._policy.timeout is not None:
            deadline = self._clock() + self._policy.timeout
        return _Flight(index, attempt, deadline, pool.submit(index))

    def _await_any(self, flights: List[_Flight]) -> set:
        real = [f.future for f in flights if f.future is not None]
        if not real:
            # Only hung attempts remain: virtual time is the sole way
            # forward, so sleep one poll tick and re-check deadlines.
            self._sleep(self._policy.poll_interval)
            return set()
        done, _ = wait(
            real,
            timeout=self._policy.poll_interval,
            return_when=FIRST_COMPLETED,
        )
        return done

    def _collect(self, flight: _Flight) -> Optional[str]:
        """Resolve one completed future; returns "broken"/"hung"/None."""
        index, attempt = flight.index, flight.attempt
        try:
            value = flight.future.result()
        except BrokenProcessPool as error:
            self._fail(
                index,
                attempt,
                ShardCrashError(
                    f"shard {index} worker died before shipping its result "
                    f"(process pool broken: {error})",
                    shard_index=index,
                    attempt=attempt,
                ),
            )
            return "broken"
        except _faults.InjectedCrash as error:
            self._fail(
                index,
                attempt,
                ShardCrashError(
                    f"shard {index} worker died before shipping its result "
                    f"({error})",
                    shard_index=index,
                    attempt=attempt,
                ),
            )
            return None
        except _faults.InjectedHang:
            return self._park_hung(flight)
        # Deterministic application exceptions propagate unretried (a
        # re-run would fail identically); KeyboardInterrupt propagates to
        # the caller's interrupt handling.
        plan = _faults.active_plan()
        if plan is not None:
            try:
                plan.intercept(index, attempt)
            except _faults.InjectedCrash as error:
                self._fail(
                    index,
                    attempt,
                    ShardCrashError(
                        f"shard {index} worker died before shipping its "
                        f"result ({error})",
                        shard_index=index,
                        attempt=attempt,
                    ),
                )
                return None
            except _faults.InjectedHang:
                return self._park_hung(flight)
        self._accept(index, value)
        return None

    def _park_hung(self, flight: _Flight) -> str:
        if flight.deadline is None:
            raise ExecutionError(
                f"hang injected into shard {flight.index} but the "
                f"supervision policy has no timeout — the attempt could "
                f"never end; give the policy a deadline"
            )
        flight.future = None
        return "hung"

    def _fail(self, index: int, attempt: int, error: ShardError) -> None:
        shard = self.report.shards[index]
        shard.failures.append(error)
        if attempt >= self._policy.max_attempts:
            self._exhaust(index)
            return
        delay = self._record_backoff(attempt)
        ready = self._clock() + delay if delay > 0 else 0.0
        heappush(self._retry_heap, (ready, index, attempt + 1))

    def _promote_retries(self, pending: deque) -> None:
        if not self._retry_heap:
            return
        now = self._clock()
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _, index, attempt = heappop(self._retry_heap)
            pending.append((index, attempt))

    def _wait_for_retry(self) -> None:
        ready = self._retry_heap[0][0]
        now = self._clock()
        if ready > now:
            self._sleep(min(self._policy.poll_interval, ready - now))

    def _rebuild(self, pool: WorkerPool, flights: List[_Flight]) -> WorkerPool:
        """Replace a broken pool; resubmit surviving in-flight attempts.

        Survivors keep their attempt number — the breakage was not their
        fault — but get fresh deadlines, since their work restarts.
        """
        assert self._pool_factory is not None
        pool.abandon()
        pool = self._pool_factory()
        self.report.pools_rebuilt += 1
        for flight in flights:
            if flight.future is not None:
                flight.future = pool.submit(flight.index)
                if self._policy.timeout is not None:
                    flight.deadline = self._clock() + self._policy.timeout
        return pool

    def _sweep_deadlines(
        self, flights: List[_Flight], pool: WorkerPool
    ) -> Tuple[List[_Flight], WorkerPool]:
        if self._policy.timeout is None or not flights:
            return flights, pool
        if not any(f.deadline is not None for f in flights):
            return flights, pool
        now = self._clock()
        expired = [
            f for f in flights if f.deadline is not None and now >= f.deadline
        ]
        if not expired:
            return flights, pool
        survivors = [f for f in flights if f not in expired]
        for flight in expired:
            self._fail(
                flight.index,
                flight.attempt,
                ShardTimeoutError(
                    f"shard {flight.index} attempt {flight.attempt} "
                    f"exceeded its {self._policy.timeout:g}s deadline",
                    shard_index=flight.index,
                    attempt=flight.attempt,
                    timeout=self._policy.timeout,
                ),
            )
        if any(f.future is not None for f in expired):
            # A real worker is stuck: the pool cannot take it back, so
            # abandon the whole pool (terminating its workers) and restart
            # the innocent in-flight attempts on a fresh one.
            pool = self._rebuild(pool, survivors)
        return survivors, pool
