#!/usr/bin/env python
"""Markovian feature-release scenario: the paper's Figure 5 query.

A cyclic dependency: demand drives the feature-release decision, and the
release date feeds back into future demand through a CHAIN parameter.  The
chain must be simulated step by step — unless Jigsaw's Markov-jump
evaluator (Algorithm 4) can skip the non-Markovian regions, which this
example demonstrates with invocation counts and a release-week histogram.

Run:  python examples/feature_release_chain.py
"""


from repro import compile_query
from repro.blackbox import (
    BlackBoxRegistry,
    DemandModel,
    FunctionBlackBox,
)
from repro.scenario import ChainScenarioRunner
from repro.util.stats import histogram

RELEASE_THRESHOLD = 25.0
TARGET_WEEK = 45
INSTANCES = 300

QUERY = """
DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @release_week AS CHAIN release_week
  FROM @current_week : @current_week - 1
  INITIAL VALUE 52;
SELECT ReleaseWeekModel(demand, @release_week, @current_week)
    AS release_week, demand
FROM (SELECT DemandModel(@current_week, @release_week) AS demand)
INTO results;
"""


def build_registry():
    registry = BlackBoxRegistry()
    registry.register(DemandModel(), "DemandModel")

    def release_week_model(params, seed):
        """Management releases the feature once demand crosses the bar."""
        if params["demand"] > RELEASE_THRESHOLD:
            return min(params["release_week"], params["week_now"])
        return params["release_week"]

    registry.register(
        FunctionBlackBox(
            release_week_model,
            name="ReleaseWeekModel",
            parameter_names=("demand", "release_week", "week_now"),
        ),
        "ReleaseWeekModel",
    )
    return registry


def print_histogram(states, label):
    counts, edges = histogram(states, bins=8)
    peak = max(counts) or 1
    print(f"\n{label} — release-week distribution:")
    for count, lo, hi in zip(counts, edges, edges[1:]):
        bar = "#" * int(40 * count / peak)
        print(f"  [{lo:5.1f}, {hi:5.1f})  {bar} {count}")


def main():
    bound = compile_query(QUERY, build_registry())
    runner = ChainScenarioRunner(
        bound.scenario,
        instance_count=INSTANCES,
        fingerprint_size=20,  # sized to the crossing-time dispersion
    )

    naive = runner.run_naive(TARGET_WEEK)
    jigsaw = runner.run_jigsaw(TARGET_WEEK)

    print(
        f"chain: {TARGET_WEEK} weeks x {INSTANCES} instances "
        f"(release once demand > {RELEASE_THRESHOLD})"
    )
    print(
        f"naive : {naive.markov.step_invocations:>8} step invocations, "
        f"mean release week {naive.final_metrics.expectation:.2f}"
    )
    print(
        f"jigsaw: {jigsaw.markov.step_invocations:>8} step invocations "
        f"({naive.markov.step_invocations / jigsaw.markov.step_invocations:.1f}x fewer), "
        f"mean release week {jigsaw.final_metrics.expectation:.2f}"
    )
    jump_spans = ", ".join(
        f"{j.from_step}->{j.to_step}" for j in jigsaw.markov.jumps
    )
    print(
        f"jumps: {jump_spans} | full-population steps: "
        f"{jigsaw.markov.full_steps} (the Markovian region around the "
        "demand threshold crossing)"
    )

    print_histogram(naive.markov.states, "naive")
    print_histogram(jigsaw.markov.states, "jigsaw")

    drift = abs(
        jigsaw.final_metrics.expectation - naive.final_metrics.expectation
    )
    print(f"\nmean release-week difference: {drift:.3f} weeks")


if __name__ == "__main__":
    main()
