"""Client for the basis-store serving daemon.

:class:`ServeClient` speaks the length-prefixed JSON protocol and the
typed message vocabulary of :mod:`repro.api.messages`, so a caller can
swap it for an in-process :class:`repro.api.Session` without touching
request or response handling — the daemon's answers are bitwise the
session's.  The convenience methods (:meth:`match`, :meth:`estimate`,
:meth:`refine`, :meth:`stats`) mirror the Session surface; :meth:`send`
and :meth:`recv` expose the pipelined form (many requests in flight on
one connection, answered in order) that the load generator uses.

One client is one connection and is not thread-safe — give each thread
its own.
"""

from __future__ import annotations

import socket
from typing import Optional, Sequence

from repro.api.messages import (
    EstimateRequest,
    EstimateResponse,
    MatchRequest,
    MatchResponse,
    RefineRequest,
    RefineResponse,
    ShutdownRequest,
    ShutdownResponse,
    StatsRequest,
    StatsResponse,
    DEFAULT_STORE,
    decode_response,
    encode_request,
)
from repro.errors import ServeError
from repro.serve.protocol import recv_frame, send_frame


class ServeClient:
    """One connection to a :class:`~repro.serve.daemon.BasisServer`."""

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 30.0
    ):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None

    # -- connection ---------------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as error:
            raise ServeError(
                f"cannot connect to {self.host}:{self.port}: {error}"
            ) from error
        # Frames are small; Nagle + delayed ACK would add ~40ms.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- pipelined primitives -----------------------------------------------

    def send(self, request) -> None:
        """Queue one request on the wire without waiting for its answer."""
        if self._sock is None:
            self.connect()
        send_frame(self._sock, encode_request(request))

    def recv(self):
        """The next in-order response; raises if the daemon hung up."""
        if self._sock is None:
            raise ServeError("client is not connected")
        body = recv_frame(self._sock)
        if body is None:
            raise ServeError(
                "server closed the connection before answering"
            )
        return decode_response(body)

    def request(self, request):
        """One synchronous round trip."""
        self.send(request)
        return self.recv()

    # -- session-mirroring conveniences -------------------------------------

    def match(
        self,
        fingerprint: Sequence[float],
        store: str = DEFAULT_STORE,
    ) -> MatchResponse:
        return self.request(
            MatchRequest(fingerprint=tuple(fingerprint), store=store)
        )

    def estimate(
        self,
        fingerprint: Sequence[float],
        store: str = DEFAULT_STORE,
    ) -> EstimateResponse:
        return self.request(
            EstimateRequest(fingerprint=tuple(fingerprint), store=store)
        )

    def refine(
        self,
        basis_id: int,
        samples: Sequence[float],
        store: str = DEFAULT_STORE,
    ) -> RefineResponse:
        return self.request(
            RefineRequest(
                basis_id=basis_id, samples=tuple(samples), store=store
            )
        )

    def stats(self) -> StatsResponse:
        return self.request(StatsRequest())

    def shutdown(self) -> ShutdownResponse:
        """Ask the daemon to drain and exit (it still answers this)."""
        return self.request(ShutdownRequest())
