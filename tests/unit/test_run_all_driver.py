"""Driver-level tests for ``benchmarks/run_all.py``'s baseline protections.

``BENCH_run_all.json`` is the committed perf-regression baseline, so the
driver must never let a partial (``--only``), differently-scaled, or
sharded (``--workers``) run clobber it.  These tests exercise that logic
end to end through ``main`` with stubbed figure runners — tmp-path
baselines, malformed JSON, scale and worker mismatches, ``partial`` /
``merged_figures`` marking — plus one real smoke-sized run proving the
``--workers`` counters are bit-identical to the serial driver run.
"""

import importlib.util
import json
import os
import sys

import pytest

from repro.bench.harness import FigureResult, Series

_RUN_ALL_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
    "run_all.py",
)

ALL_FIGURES = (
    "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "match", "crossover"
)


@pytest.fixture()
def run_all():
    """A private module instance so monkeypatching never leaks."""
    spec = importlib.util.spec_from_file_location(
        "_run_all_under_test", _RUN_ALL_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("_run_all_under_test", None)


def _stub_result(name, counter=1.0):
    result = FigureResult(
        figure=name,
        caption="stub",
        x_label="x",
        y_label="y",
        series=[Series("Stub", [(0.0, 1.0)])],
        counters={"samples_drawn": counter},
    )
    return result


def _install_stubs(monkeypatch, run_all, counter=1.0):
    monkeypatch.setattr(run_all, "run_fig7", lambda scale: "Figure 7 stub")
    monkeypatch.setattr(
        run_all, "run_match", lambda scale: _stub_result("match", counter)
    )
    monkeypatch.setattr(
        run_all,
        "run_crossover",
        lambda scale: _stub_result("crossover", counter),
    )
    for name in ALL_FIGURES[1:]:
        if not name.startswith("fig"):
            continue
        number = name[3:]
        if name in ("fig8", "fig9", "fig10", "fig11"):
            monkeypatch.setattr(
                run_all,
                f"run_fig{number}",
                lambda scale, workers=1, adaptive=None, warm_store=None,
                checkpoint=None, _n=name: _stub_result(_n, counter),
            )
        else:
            monkeypatch.setattr(
                run_all,
                f"run_fig{number}",
                lambda scale, _n=name: _stub_result(_n, counter),
            )


def _read(path):
    with open(path) as handle:
        return json.load(handle)


class TestFullRuns:
    def test_writes_complete_baseline(self, tmp_path, monkeypatch, run_all):
        _install_stubs(monkeypatch, run_all)
        out = tmp_path / "bench.json"
        run_all.main(["--bench-out", str(out)])
        bench = _read(out)
        assert set(bench["figures"]) == set(ALL_FIGURES)
        assert bench["scale"] == "quick"
        assert bench["workers"] == 1
        assert "partial" not in bench
        assert "merged_figures" not in bench
        assert bench["figures"]["fig9"]["samples_drawn"] == 1.0
        assert bench["total_seconds"] >= 0.0

    def test_interrupt_during_figure_exits_130(
        self, tmp_path, monkeypatch, run_all, capsys
    ):
        _install_stubs(monkeypatch, run_all)

        def interrupted(
            scale, workers=1, adaptive=None, warm_store=None, checkpoint=None
        ):
            raise KeyboardInterrupt

        monkeypatch.setattr(run_all, "run_fig9", interrupted)
        out = tmp_path / "bench.json"
        code = run_all.main(
            [
                "--bench-out", str(out),
                "--checkpoint", str(tmp_path / "ckpt"),
            ]
        )
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted during fig9" in err
        # The operator is told how to resume the interrupted sweep.
        assert "--checkpoint" in err

    def test_interrupt_without_checkpoint_suggests_nothing(
        self, tmp_path, monkeypatch, run_all, capsys
    ):
        _install_stubs(monkeypatch, run_all)

        def interrupted(
            scale, workers=1, adaptive=None, warm_store=None, checkpoint=None
        ):
            raise KeyboardInterrupt

        monkeypatch.setattr(run_all, "run_fig9", interrupted)
        assert run_all.main(["--bench-out", ""]) == 130
        err = capsys.readouterr().err
        assert "interrupted during fig9" in err
        assert "--checkpoint" not in err

    def test_other_scale_full_run_refuses_overwrite(
        self, tmp_path, monkeypatch, run_all, capsys
    ):
        _install_stubs(monkeypatch, run_all)
        out = tmp_path / "bench.json"
        run_all.main(["--bench-out", str(out), "--scale", "quick"])
        before = _read(out)
        run_all.main(["--bench-out", str(out), "--scale", "smoke"])
        assert _read(out) == before
        assert "not overwriting" in capsys.readouterr().err

    def test_sharded_full_run_never_replaces_serial_baseline(
        self, tmp_path, monkeypatch, run_all, capsys
    ):
        _install_stubs(monkeypatch, run_all)
        out = tmp_path / "bench.json"
        run_all.main(["--bench-out", str(out)])
        before = _read(out)
        run_all.main(["--bench-out", str(out), "--workers", "4"])
        assert _read(out) == before
        assert "worker" in capsys.readouterr().err

    def test_sharded_run_records_worker_count(
        self, tmp_path, monkeypatch, run_all
    ):
        _install_stubs(monkeypatch, run_all)
        out = tmp_path / "sharded.json"
        run_all.main(["--bench-out", str(out), "--workers", "4"])
        assert _read(out)["workers"] == 4

    def test_legacy_baseline_without_workers_key_is_serial(
        self, tmp_path, monkeypatch, run_all
    ):
        """Pre-PR-2 baselines carry no ``workers`` key: they were serial."""
        _install_stubs(monkeypatch, run_all)
        out = tmp_path / "bench.json"
        run_all.main(["--bench-out", str(out)])
        bench = _read(out)
        bench.pop("workers")
        out.write_text(json.dumps(bench))
        kind, _ = run_all._classify_baseline(str(out), "quick", 1)
        assert kind == "compatible"
        kind, _ = run_all._classify_baseline(str(out), "quick", 4)
        assert kind == "other-workers"

    def test_warm_run_is_tagged_and_never_replaces_cold_baseline(
        self, tmp_path, monkeypatch, run_all, capsys
    ):
        """A --warm-store run records the tag and refuses to clobber a
        cold baseline (and vice versa) — the adaptive-tagging pattern."""
        _install_stubs(monkeypatch, run_all)
        out = tmp_path / "bench.json"
        run_all.main(["--bench-out", str(out)])
        before = _read(out)
        assert "warm_store" not in before  # cold documents stay untagged
        run_all.main(
            ["--bench-out", str(out), "--warm-store", str(tmp_path / "s")]
        )
        assert _read(out) == before
        assert "warm" in capsys.readouterr().err
        # A warm document written elsewhere carries the tag...
        warm_out = tmp_path / "warm.json"
        run_all.main(
            [
                "--bench-out", str(warm_out),
                "--warm-store", str(tmp_path / "s"),
            ]
        )
        assert _read(warm_out)["warm_store"] is True
        # ... and a cold run refuses to clobber it.
        run_all.main(["--bench-out", str(warm_out)])
        assert _read(warm_out)["warm_store"] is True
        assert "warm" in capsys.readouterr().err

    def test_warm_only_merge_refused_into_cold_baseline(
        self, tmp_path, monkeypatch, run_all, capsys
    ):
        _install_stubs(monkeypatch, run_all)
        out = tmp_path / "bench.json"
        run_all.main(["--bench-out", str(out)])
        before = _read(out)
        run_all.main(
            [
                "--bench-out", str(out), "--only", "fig9",
                "--warm-store", str(tmp_path / "s"),
            ]
        )
        assert _read(out) == before
        assert "not overwriting" in capsys.readouterr().err

    def test_warm_store_without_consuming_figures_runs_cold(
        self, tmp_path, monkeypatch, run_all, capsys
    ):
        """fig12 has no store to persist: the document must stay untagged
        (it is bit-identical to a cold run) and merge cleanly."""
        _install_stubs(monkeypatch, run_all)
        out = tmp_path / "bench.json"
        run_all.main(["--bench-out", str(out)])
        run_all.main(
            [
                "--bench-out", str(out), "--only", "fig12",
                "--warm-store", str(tmp_path / "s"),
            ]
        )
        bench = _read(out)
        assert "warm_store" not in bench
        assert bench["merged_figures"] == ["fig12"]
        assert "no effect" in capsys.readouterr().err


class TestOnlyMerge:
    def _seed_baseline(self, monkeypatch, run_all, out):
        _install_stubs(monkeypatch, run_all, counter=1.0)
        run_all.main(["--bench-out", str(out)])
        return _read(out)

    def test_merges_into_compatible_baseline(
        self, tmp_path, monkeypatch, run_all
    ):
        out = tmp_path / "bench.json"
        before = self._seed_baseline(monkeypatch, run_all, out)
        _install_stubs(monkeypatch, run_all, counter=9.0)
        run_all.main(["--bench-out", str(out), "--only", "fig9"])
        merged = _read(out)
        assert merged["figures"]["fig9"]["samples_drawn"] == 9.0
        for name in ALL_FIGURES:
            if name != "fig9":
                assert merged["figures"][name] == before["figures"][name]
        assert merged["merged_figures"] == ["fig9"]
        assert "partial" not in merged  # still covers every figure
        assert merged["total_seconds"] == pytest.approx(
            round(
                sum(
                    entry["seconds"]
                    for entry in merged["figures"].values()
                ),
                4,
            )
        )

    def test_only_without_baseline_marks_partial(
        self, tmp_path, monkeypatch, run_all
    ):
        _install_stubs(monkeypatch, run_all)
        out = tmp_path / "bench.json"
        run_all.main(["--bench-out", str(out), "--only", "fig10"])
        bench = _read(out)
        assert set(bench["figures"]) == {"fig10"}
        assert bench["partial"] == ["fig10"]
        assert bench["merged_figures"] == ["fig10"]

    def test_refuses_malformed_json(
        self, tmp_path, monkeypatch, run_all, capsys
    ):
        _install_stubs(monkeypatch, run_all)
        out = tmp_path / "bench.json"
        out.write_text("{not json at all")
        run_all.main(["--bench-out", str(out), "--only", "fig9"])
        assert out.read_text() == "{not json at all"
        assert "not overwriting" in capsys.readouterr().err

    def test_refuses_unrecognized_shape(
        self, tmp_path, monkeypatch, run_all, capsys
    ):
        _install_stubs(monkeypatch, run_all)
        out = tmp_path / "bench.json"
        out.write_text(json.dumps({"figures": [1, 2, 3]}))
        run_all.main(["--bench-out", str(out), "--only", "fig9"])
        assert _read(out) == {"figures": [1, 2, 3]}
        assert "not overwriting" in capsys.readouterr().err

    def test_refuses_scale_mismatch(
        self, tmp_path, monkeypatch, run_all, capsys
    ):
        out = tmp_path / "bench.json"
        before = self._seed_baseline(monkeypatch, run_all, out)
        run_all.main(
            ["--bench-out", str(out), "--only", "fig9", "--scale", "smoke"]
        )
        assert _read(out) == before
        assert "scale" in capsys.readouterr().err

    def test_refuses_workers_mismatch(
        self, tmp_path, monkeypatch, run_all, capsys
    ):
        out = tmp_path / "bench.json"
        before = self._seed_baseline(monkeypatch, run_all, out)
        run_all.main(
            ["--bench-out", str(out), "--only", "fig9", "--workers", "2"]
        )
        assert _read(out) == before
        assert "worker" in capsys.readouterr().err

    def test_unknown_figure_rejected(self, monkeypatch, run_all, capsys):
        _install_stubs(monkeypatch, run_all)
        with pytest.raises(SystemExit):
            run_all.main(["--only", "fig99", "--bench-out", ""])


class TestShardedCountersMatchSerial:
    def test_real_smoke_fig10_counters_identical(self, tmp_path, run_all):
        """A real (unstubbed) sharded driver run reproduces the serial
        counters exactly — the acceptance invariant behind CI's second
        ``check_regression.py --workers 4`` pass."""
        serial_out = tmp_path / "serial.json"
        sharded_out = tmp_path / "sharded.json"
        run_all.main(
            [
                "--scale", "smoke", "--only", "fig10",
                "--bench-out", str(serial_out),
            ]
        )
        run_all.main(
            [
                "--scale", "smoke", "--only", "fig10",
                "--bench-out", str(sharded_out), "--workers", "4",
            ]
        )
        serial = _read(serial_out)["figures"]["fig10"]
        sharded = _read(sharded_out)["figures"]["fig10"]
        for entry in (serial, sharded):
            entry.pop("seconds")  # wall clock varies with sharding ...
            entry.pop("match_seconds")  # ... as does match engine time
        assert sharded == serial
