"""End-to-end integration test: the paper's Figure 5 Markov-chain query.

A cyclically dependent release-week / demand pair: ReleaseWeekModel releases
the feature once observed demand crosses a threshold, and the release date
feeds back into DemandModel through the CHAIN parameter.  The Markov-jump
evaluator must track the naive chain while touching far fewer instances.
"""

import pytest

from repro.blackbox import (
    BlackBoxRegistry,
    DemandModel,
    FunctionBlackBox,
)
from repro.core.seeds import SeedBank
from repro.lang.binder import compile_query
from repro.scenario import ChainScenarioRunner

THRESHOLD = 25.0

FIG5_QUERY = """
-- DEFINITION --
DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @release_week AS CHAIN release_week
  FROM @current_week : @current_week - 1
  INITIAL VALUE 52;
SELECT ReleaseWeekModel(demand, @release_week, @current_week)
    AS release_week, demand
FROM (SELECT DemandModel(@current_week, @release_week) AS demand)
INTO results;
"""


def build_registry():
    registry = BlackBoxRegistry()
    registry.register(DemandModel(), "DemandModel")

    def release_week_model(params, seed):
        if params["demand"] > THRESHOLD:
            return min(params["release_week"], params["week_now"])
        return params["release_week"]

    registry.register(
        FunctionBlackBox(
            release_week_model,
            name="ReleaseWeekModel",
            parameter_names=("demand", "release_week", "week_now"),
        ),
        "ReleaseWeekModel",
    )
    return registry


@pytest.fixture(scope="module")
def scenario():
    return compile_query(FIG5_QUERY, build_registry()).scenario


class TestChainQuery:
    def test_chain_parameter_bound(self, scenario):
        chain = scenario.chain_parameters[0]
        assert chain.name == "release_week"
        assert chain.driver == "current_week"
        assert chain.driver_offset == -1
        assert chain.initial_value == 52.0

    def test_naive_release_clusters_near_threshold(self, scenario):
        runner = ChainScenarioRunner(
            scenario, instance_count=80, seed_bank=SeedBank(3)
        )
        result = runner.run_naive(45)
        # Demand mean ≈ week: crossing THRESHOLD=25 happens around week 25
        # with per-instance noise spreading release weeks around it.
        assert 15.0 <= result.final_metrics.expectation <= 32.0
        assert result.final_metrics.stddev < 10.0

    def test_jigsaw_tracks_naive(self, scenario):
        """With a fingerprint sized to the crossing-time dispersion (m=20
        here), the jump evaluator reproduces the naive chain's release
        distribution almost exactly while skipping most steps."""
        bank = SeedBank(3)
        runner = ChainScenarioRunner(
            scenario,
            instance_count=80,
            fingerprint_size=20,
            seed_bank=bank,
        )
        naive = runner.run_naive(45)
        jigsaw = runner.run_jigsaw(45)
        assert jigsaw.final_metrics.expectation == pytest.approx(
            naive.final_metrics.expectation, abs=0.5
        )

    def test_fingerprint_size_governs_jump_accuracy(self, scenario):
        """Ablation of the Algorithm 4 approximation: the fingerprint only
        watches m instances, so a too-small m can freeze late-crossing
        instances; growing m drives the error to zero at geometric rate."""
        bank = SeedBank(3)
        errors = {}
        for m in (10, 20):
            runner = ChainScenarioRunner(
                scenario,
                instance_count=80,
                fingerprint_size=m,
                seed_bank=bank,
            )
            naive = runner.run_naive(45)
            jigsaw = runner.run_jigsaw(45)
            errors[m] = abs(
                jigsaw.final_metrics.expectation
                - naive.final_metrics.expectation
            )
        assert errors[20] <= errors[10]
        assert errors[20] < 0.5

    def test_jigsaw_jumps_non_markovian_regions(self, scenario):
        runner = ChainScenarioRunner(
            scenario,
            instance_count=80,
            fingerprint_size=10,
            seed_bank=SeedBank(3),
        )
        result = runner.run_jigsaw(45)
        # Before week ~20 and after week ~30 the chain is non-Markovian;
        # those regions must be jumped, not stepped.
        assert result.markov.jumps
        assert result.markov.jumped_steps > 10

    def test_jigsaw_cost_advantage(self, scenario):
        bank = SeedBank(3)
        runner = ChainScenarioRunner(
            scenario, instance_count=100, fingerprint_size=10, seed_bank=bank
        )
        naive = runner.run_naive(45)
        jigsaw = runner.run_jigsaw(45)
        assert (
            jigsaw.markov.step_invocations
            < naive.markov.step_invocations / 2
        )
