"""The unified Session facade and its typed message vocabulary.

Pins the api_redesign contract: one surface (:class:`repro.api.Session`)
behind every warm-start entry point, typed requests answered identically
one-at-a-time and in micro-batches (``handle_batch`` bitwise equals
sequential ``handle``), a lossless hex-float wire codec, and the four
legacy entry points (explorer ``basis_store=``, ScenarioRunner,
InteractiveSession, CLI warm-start flags) delegating without behavior
change.
"""

import numpy as np
import pytest

from repro.api import (
    CompactRequest,
    ErrorResponse,
    EstimateRequest,
    EvictRequest,
    MatchRequest,
    RefineRequest,
    Session,
    ShutdownRequest,
    StatsRequest,
    StatsResponse,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.core.basis import BasisStore
from repro.core.fingerprint import Fingerprint
from repro.errors import ApiError, ProtocolError
from repro.serve import build_fixture_session, build_request_stream

BASE = Fingerprint((0.0, 1.0, 0.5, 2.0, -1.0))
SAMPLES = np.linspace(-1.0, 2.0, 40)


def _affine(fp, alpha, beta):
    return tuple(alpha * v + beta for v in fp.values)


def make_session():
    store = BasisStore()
    store.add(BASE, SAMPLES)
    store.add(Fingerprint(_affine(BASE, 2.0, 3.0)), SAMPLES * 2.0)
    store.add(Fingerprint((9.0, 1.0, 7.0, 3.0, 5.0)), SAMPLES + 1.0)
    return Session(store)


class TestConstruction:
    def test_single_store_becomes_default(self):
        store = BasisStore()
        session = Session(store)
        assert session.store() is store
        assert session.store_names == ["default"]

    def test_named_stores(self):
        stores = {"a": BasisStore(), "b": BasisStore()}
        session = Session(stores)
        assert session.store("a") is stores["a"]
        assert session.store_names == ["a", "b"]

    def test_unknown_store_is_typed_error(self):
        with pytest.raises(ApiError, match="no store named"):
            make_session().store("nope")

    def test_empty_mapping_refused(self):
        with pytest.raises(ApiError):
            Session({})

    def test_create_is_a_cold_start(self):
        session = Session.create()
        assert session.basis_count() == 0

    def test_resolve_basis_store_unwraps(self):
        session = make_session()
        assert session.resolve_basis_store() is session.store()


class TestTypedHandlers:
    def test_match_hit_reports_mapping_and_work(self):
        session = make_session()
        response = session.match(
            MatchRequest(fingerprint=_affine(BASE, 3.0, -2.0))
        )
        assert response.matched
        assert response.basis_id == 0
        assert response.mapping is not None
        assert response.candidates_tested >= 1

    def test_match_miss(self):
        session = make_session()
        response = session.match(
            MatchRequest(fingerprint=(0.3, 0.1, 0.9, 0.2, 0.8))
        )
        assert not response.matched
        assert response.basis_id is None

    def test_estimate_hit_carries_remapped_metrics(self):
        session = make_session()
        response = session.estimate(
            EstimateRequest(fingerprint=_affine(BASE, 2.0, 0.0))
        )
        assert response.matched
        store = session.store()
        expected = store.metrics_for(
            store.get(response.basis_id), response.mapping
        )
        assert response.metrics == expected

    def test_refine_extends_the_basis(self):
        session = make_session()
        before = session.store().get(1).samples.size
        response = session.refine(
            RefineRequest(basis_id=1, samples=(0.5, -0.25, 1.5))
        )
        assert response.basis_id == 1
        assert response.sample_count == before + 3
        assert session.store().get(1).samples.size == before + 3

    def test_refine_unknown_basis_is_typed_error(self):
        with pytest.raises(ApiError, match="no basis"):
            make_session().refine(
                RefineRequest(basis_id=99, samples=(1.0,))
            )

    def test_refine_needs_samples(self):
        with pytest.raises(ApiError):
            make_session().refine(RefineRequest(basis_id=0, samples=()))

    def test_stats_reports_deterministic_counters(self):
        session = make_session()
        session.match(MatchRequest(fingerprint=BASE.values))
        response = session.stats()
        assert response.bases == {"default": 3}
        counters = response.counters["default"]
        assert counters["lookups"] == 1
        assert counters["matches"] == 1
        assert "match_seconds" not in counters

    def test_handle_converts_typed_errors(self):
        response = make_session().handle(
            RefineRequest(basis_id=99, samples=(1.0,))
        )
        assert isinstance(response, ErrorResponse)
        assert response.code == "ApiError"

    def test_handle_unknown_type(self):
        response = make_session().handle(object())
        assert isinstance(response, ErrorResponse)

    def test_handle_shutdown_in_process_acks(self):
        response = make_session().handle(ShutdownRequest(request_id=4))
        assert response.draining
        assert response.request_id == 4


class TestBatchParity:
    """handle_batch == sequential handle, bitwise (the daemon's invariant)."""

    def _stream(self, session, seed):
        return build_request_stream(session, 120, seed=seed)

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_mixed_stream_parity(self, seed):
        fixture_kwargs = dict(bases=10, seed=2026)
        serial = build_fixture_session(**fixture_kwargs)
        batched = build_fixture_session(**fixture_kwargs)
        requests = self._stream(serial, seed)
        want = [serial.handle(r) for r in requests]
        got = batched.handle_batch(requests)
        assert got == want
        assert batched.stats() == serial.stats()

    def test_batch_with_errors_and_admin_interleaved(self):
        session = make_session()
        reference = make_session()
        requests = [
            MatchRequest(fingerprint=_affine(BASE, 2.0, 1.0), request_id=0),
            EstimateRequest(
                fingerprint=(1.0, 2.0, 3.0, 4.0, 5.0),
                store="nope",
                request_id=1,
            ),
            RefineRequest(basis_id=0, samples=(0.5,), request_id=2),
            StatsRequest(request_id=3),
            EstimateRequest(fingerprint=BASE.values, request_id=4),
            MatchRequest(fingerprint=(), request_id=5),
        ]
        want = [reference.handle(r) for r in requests]
        got = session.handle_batch(requests)
        assert got == want
        assert isinstance(got[1], ErrorResponse)
        assert isinstance(got[5], ErrorResponse)

    def test_all_invalid_probes_batch_parity(self):
        """A batch where *every* probe is bad must still equal sequential
        handle — and neither path may touch the store (a sequential
        handle never reaches match_batch for a bad request, so the batch
        path must not call it either)."""
        session = make_session()
        reference = make_session()
        before = session.store().stats.as_dict()
        requests = [
            MatchRequest(fingerprint=(), request_id=0),
            EstimateRequest(fingerprint=(), request_id=1),
            MatchRequest(fingerprint=BASE.values, store="nope",
                         request_id=2),
            EstimateRequest(fingerprint=(1.0,), store="nope", request_id=3),
        ]
        want = [reference.handle(r) for r in requests]
        got = session.handle_batch(requests)
        assert got == want
        assert all(isinstance(r, ErrorResponse) for r in got)
        assert session.store().stats.as_dict() == before

    def test_empty_batch(self):
        assert make_session().handle_batch([]) == []


class TestWireCodec:
    """encode/decode round trips are lossless (hex floats end to end)."""

    def test_request_round_trip_bitwise(self):
        tricky = (0.1, 1e-300, -0.0, 3.141592653589793)
        for request in (
            MatchRequest(fingerprint=tricky, request_id=9),
            EstimateRequest(fingerprint=tricky, store="s"),
            RefineRequest(basis_id=3, samples=tricky, request_id=1),
            StatsRequest(request_id=2),
            EvictRequest(max_bases=4, max_bytes=1 << 20, keep="recent",
                         store="s", request_id=5),
            EvictRequest(max_bytes=0),
            CompactRequest(store="s", request_id=6),
            CompactRequest(),
            ShutdownRequest(),
        ):
            assert decode_request(encode_request(request)) == request

    def test_response_round_trip_bitwise(self):
        session = make_session()
        requests = [
            EstimateRequest(
                fingerprint=_affine(BASE, 1.75, -0.3), request_id=0
            ),
            MatchRequest(
                fingerprint=(0.3, 0.1, 0.9, 0.2, 0.8), request_id=1
            ),
            RefineRequest(basis_id=2, samples=(0.125,), request_id=2),
            StatsRequest(request_id=3),
            EvictRequest(max_bases=2, request_id=4),
            CompactRequest(request_id=5),
        ]
        for request in requests:
            response = session.handle(request)
            assert decode_response(encode_response(response)) == response

    def test_unknown_kind_refused(self):
        with pytest.raises(ProtocolError):
            decode_request({"kind": "divine"})
        with pytest.raises(ProtocolError):
            decode_response({"kind": "divine"})

    def test_malformed_request_refused(self):
        with pytest.raises(ProtocolError):
            decode_request({"kind": "match"})  # no fingerprint
        with pytest.raises(ProtocolError):
            decode_request({"kind": "refine", "basis_id": "x", "samples": []})


class TestLegacyEntryPointsDelegate:
    """The four pre-Session warm-start spellings keep working."""

    def test_explorer_accepts_a_session(self):
        from repro.core.explorer import ParameterExplorer

        session = make_session()
        explorer = ParameterExplorer(
            simulation=lambda params, seed: 1.0,
            samples_per_point=12,
            fingerprint_size=4,
            basis_store=session,
        )
        assert explorer.store is session.store()

    def test_parallel_explorer_accepts_a_session(self):
        from repro.core.parallel import ParallelExplorer

        session = make_session()
        explorer = ParallelExplorer(
            simulation=lambda params, seed: 1.0,
            workers=1,
            samples_per_point=12,
            fingerprint_size=4,
            basis_store=session,
        )
        assert explorer.store is session.store()

    def test_interactive_session_accepts_a_session(self):
        from repro.interactive.session import InteractiveSession
        from repro.scenario.parameter import RangeParameter
        from repro.scenario.space import ParameterSpace

        space = ParameterSpace(
            [RangeParameter("x", 0.0, 2.0, 1.0)]
        )
        session = make_session()
        interactive = InteractiveSession(
            simulation=lambda params, seed: 1.0,
            space=space,
            basis_store=session,
        )
        assert interactive.store is session.store()

    def test_interactive_save_load_round_trips_through_session(
        self, tmp_path
    ):
        from repro.interactive.session import InteractiveSession
        from repro.scenario.parameter import RangeParameter
        from repro.scenario.space import ParameterSpace

        space = ParameterSpace([RangeParameter("x", 0.0, 2.0, 1.0)])

        def simulation(params, seed):
            rng = np.random.default_rng(seed)
            return params["x"] + rng.normal()

        first = InteractiveSession(simulation, space)
        first.focus({"x": 1.0})
        first.run(4)
        first.save_store(str(tmp_path / "snap"))

        second = InteractiveSession(simulation, space)
        second.load_store(str(tmp_path / "snap"))
        assert len(second.store) == len(first.store)
        for basis in first.store.bases:
            twin = second.store.get(basis.basis_id)
            assert twin.fingerprint == basis.fingerprint
            np.testing.assert_array_equal(twin.samples, basis.samples)

    def test_session_open_reads_scenario_runner_snapshot(self, tmp_path):
        """Cross-surface: a runner's save_stores loads as a Session."""
        from repro.blackbox import default_registry
        from repro.lang import compile_query

        bound = compile_query(
            "DECLARE PARAMETER @week AS RANGE 0 TO 2 STEP BY 2;\n"
            "SELECT DemandModel(@week, 1) AS demand INTO results;\n",
            default_registry(),
        )
        from repro.scenario import ScenarioRunner

        runner = ScenarioRunner(bound.scenario, samples_per_point=20)
        runner.run()
        runner.save_stores(str(tmp_path / "snap"))

        session = Session.open(str(tmp_path / "snap"))
        assert session.store_names == ["demand"]
        assert session.basis_count() == runner.basis_count()
        response = session.stats()
        assert isinstance(response, StatsResponse)
        assert response.bases["demand"] == runner.basis_count()


class TestSessionPersistence:
    def test_save_open_probe_parity(self, tmp_path):
        session = make_session()
        probes = [
            MatchRequest(fingerprint=_affine(BASE, 2.5, 0.0)),
            EstimateRequest(fingerprint=_affine(BASE, -1.5, 0.25)),
            MatchRequest(fingerprint=(0.3, 0.1, 0.9, 0.2, 0.8)),
        ]
        want = [session.handle(p) for p in probes]
        session.save(str(tmp_path / "snap"))
        # Counters persist, so the warm session continues the sequence.
        warm = Session.open(str(tmp_path / "snap"))
        got = [warm.handle(p) for p in probes]
        for w, g in zip(want, got):
            assert type(w) is type(g)
            assert w.matched == g.matched
            assert w.basis_id == g.basis_id
            assert w.mapping == g.mapping
            assert w.candidates_tested == g.candidates_tested

    def test_open_missing_snapshot_is_typed(self, tmp_path):
        from repro.errors import PersistError

        with pytest.raises(PersistError):
            Session.open(str(tmp_path / "missing"))
