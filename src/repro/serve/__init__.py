"""Serve a warm basis-store snapshot to concurrent clients.

The daemon (:class:`BasisServer`) opens one snapshot through the
zero-copy mmap loader, holds it warm, and admits concurrent client
requests into micro-batches routed through the columnar
``match_batch`` engine — every answer bitwise what an in-process
:class:`repro.api.Session` would return for the same request.  The
wire protocol is 4-byte-length-prefixed JSON with hex-encoded floats
(:mod:`repro.serve.protocol`); :class:`ServeClient` is the Python
client; :mod:`repro.serve.loadgen` generates deterministic request
streams and open-loop Poisson load for the bench harness.

Quickstart::

    # daemon (or: python -m repro serve --store snapshots/demand)
    from repro.serve import serve_snapshot
    server = serve_snapshot("snapshots/demand", port=7411)

    # client
    from repro.serve import ServeClient
    with ServeClient("127.0.0.1", 7411) as client:
        response = client.estimate((0.5, 1.0, 2.0))
"""

from repro.serve.client import ServeClient
from repro.serve.daemon import BasisServer, serve_snapshot
from repro.serve.loadgen import (
    LoadResult,
    build_fixture_session,
    build_request_stream,
    expected_responses,
    run_open_loop,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    encode_frame,
    recv_frame,
    send_frame,
)

__all__ = [
    "BasisServer",
    "LoadResult",
    "MAX_FRAME_BYTES",
    "ServeClient",
    "build_fixture_session",
    "build_request_stream",
    "encode_frame",
    "expected_responses",
    "recv_frame",
    "run_open_loop",
    "send_frame",
    "serve_snapshot",
]
