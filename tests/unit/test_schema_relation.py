"""Unit tests for probdb schemas and relations."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.probdb.relation import Relation
from repro.probdb.schema import Column, Schema


class TestColumn:
    def test_valid_column(self):
        column = Column("demand", "float")
        assert column.coerce("3.5") == 3.5

    def test_types(self):
        assert Column("n", "int").coerce(3.9) == 3
        assert Column("b", "bool").coerce(1) is True
        assert Column("s", "str").coerce(5) == "5"

    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            Column("2bad", "float")
        with pytest.raises(SchemaError):
            Column("", "float")

    def test_invalid_type(self):
        with pytest.raises(SchemaError):
            Column("x", "decimal")

    def test_coerce_failure(self):
        with pytest.raises(SchemaError):
            Column("x", "float").coerce("not-a-number")


class TestSchema:
    def test_of_strings(self):
        schema = Schema.of("a", "b:int", Column("c", "str"))
        assert schema.names == ("a", "b", "c")
        assert schema.column("b").type == "int"

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "a")

    def test_index_and_contains(self):
        schema = Schema.of("a", "b")
        assert schema.index_of("b") == 1
        assert "a" in schema
        assert "z" not in schema
        with pytest.raises(SchemaError):
            schema.index_of("z")

    def test_project(self):
        schema = Schema.of("a", "b", "c")
        assert schema.project(["c", "a"]).names == ("c", "a")

    def test_concat(self):
        merged = Schema.of("a").concat(Schema.of("b"))
        assert merged.names == ("a", "b")

    def test_concat_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a").concat(Schema.of("a"))

    def test_len(self):
        assert len(Schema.of("a", "b")) == 2

    def test_bad_spec_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(42)


class TestRelation:
    def test_rows_coerced(self):
        relation = Relation(Schema.of("a", "b:int"), [("1.5", "2")])
        assert relation.rows == ((1.5, 2),)

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError):
            Relation(Schema.of("a", "b"), [(1.0,)])

    def test_column_values_and_array(self):
        relation = Relation(Schema.of("a", "b"), [(1, 2), (3, 4)])
        assert relation.column_values("b") == [2.0, 4.0]
        np.testing.assert_allclose(relation.column_array("a"), [1.0, 3.0])

    def test_dict_round_trip(self):
        schema = Schema.of("a", "b")
        relation = Relation(schema, [(1, 2)])
        dicts = relation.to_dicts()
        assert dicts == [{"a": 1.0, "b": 2.0}]
        back = Relation.from_dicts(schema, dicts)
        assert back.rows == relation.rows

    def test_iteration_and_len(self):
        relation = Relation(Schema.of("a"), [(1,), (2,)])
        assert len(relation) == 2
        assert [row[0] for row in relation] == [1.0, 2.0]

    def test_repr(self):
        assert "rows=2" in repr(Relation(Schema.of("a"), [(1,), (2,)]))
