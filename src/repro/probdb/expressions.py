"""Scalar expression AST evaluated per row and per possible world.

Covers what the paper's example queries need (Figures 1 and 5): column and
parameter references, arithmetic, comparisons, ``CASE WHEN``, and calls to
registered black-box functions.  Black-box calls receive the current world's
seed, keeping the whole query deterministic per world — the property that
makes whole-query fingerprints possible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

from repro.blackbox.base import BlackBox
from repro.core.seeds import derive_seed
from repro.errors import QueryError


@dataclass
class EvalContext:
    """Everything an expression may reference during evaluation.

    ``row`` — the current tuple's column values;
    ``params`` — the scenario's parameter valuation (the @variables);
    ``world_seed`` — this possible world's seed (σk for round k).
    """

    row: Mapping[str, object]
    params: Mapping[str, float]
    world_seed: int


class Expression(ABC):
    """A scalar expression over (row, parameters, world)."""

    @abstractmethod
    def evaluate(self, context: EvalContext) -> object:
        """Value of this expression in the given context."""

    @abstractmethod
    def references(self) -> Tuple[str, ...]:
        """Names of columns/parameters this expression reads (for binding)."""


@dataclass(frozen=True)
class Constant(Expression):
    value: object

    def evaluate(self, context: EvalContext) -> object:
        return self.value

    def references(self) -> Tuple[str, ...]:
        return ()


@dataclass(frozen=True)
class ColumnRef(Expression):
    name: str

    def evaluate(self, context: EvalContext) -> object:
        try:
            return context.row[self.name]
        except KeyError:
            raise QueryError(
                f"unknown column {self.name!r}; row has "
                f"{sorted(context.row)}"
            ) from None

    def references(self) -> Tuple[str, ...]:
        return (self.name,)


@dataclass(frozen=True)
class ParameterRef(Expression):
    """An @parameter reference."""

    name: str

    def evaluate(self, context: EvalContext) -> object:
        try:
            return context.params[self.name]
        except KeyError:
            raise QueryError(
                f"unbound parameter @{self.name}; bound: "
                f"{sorted(context.params)}"
            ) from None

    def references(self) -> Tuple[str, ...]:
        return (f"@{self.name}",)


_BINARY_OPS: Dict[str, Callable[[object, object], object]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPS:
            raise QueryError(f"unknown operator {self.op!r}")

    def evaluate(self, context: EvalContext) -> object:
        return _BINARY_OPS[self.op](
            self.left.evaluate(context), self.right.evaluate(context)
        )

    def references(self) -> Tuple[str, ...]:
        return self.left.references() + self.right.references()


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str
    operand: Expression

    def evaluate(self, context: EvalContext) -> object:
        value = self.operand.evaluate(context)
        if self.op == "-":
            return -value  # type: ignore[operator]
        if self.op == "not":
            return not bool(value)
        raise QueryError(f"unknown unary operator {self.op!r}")

    def references(self) -> Tuple[str, ...]:
        return self.operand.references()


@dataclass(frozen=True)
class CaseWhen(Expression):
    """``CASE WHEN cond THEN a ELSE b END`` (paper Figure 1's overload)."""

    condition: Expression
    then_value: Expression
    else_value: Expression

    def evaluate(self, context: EvalContext) -> object:
        if bool(self.condition.evaluate(context)):
            return self.then_value.evaluate(context)
        return self.else_value.evaluate(context)

    def references(self) -> Tuple[str, ...]:
        return (
            self.condition.references()
            + self.then_value.references()
            + self.else_value.references()
        )


@dataclass(frozen=True)
class BlackBoxCall(Expression):
    """Invocation of a VG-style black box with expression arguments.

    The box's seed is derived from the world seed and a per-call salt so
    that multiple calls in one query draw independent randomness while
    remaining deterministic per world.
    """

    box: BlackBox
    argument_names: Tuple[str, ...]
    arguments: Tuple[Expression, ...]
    call_salt: int = 0

    def __post_init__(self) -> None:
        if len(self.argument_names) != len(self.arguments):
            raise QueryError(
                f"{self.box.name}: {len(self.argument_names)} parameter "
                f"names but {len(self.arguments)} arguments"
            )

    def evaluate(self, context: EvalContext) -> object:
        params = {}
        for name, argument in zip(self.argument_names, self.arguments):
            value = argument.evaluate(context)
            try:
                params[name] = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise QueryError(
                    f"{self.box.name} argument {name!r} is not numeric: "
                    f"{value!r}"
                ) from None
        seed = derive_seed(context.world_seed, self.call_salt)
        return self.box.sample(params, seed)

    def references(self) -> Tuple[str, ...]:
        refs: Tuple[str, ...] = ()
        for argument in self.arguments:
            refs += argument.references()
        return refs


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A deterministic scalar function (ABS, MIN, MAX over two scalars...)."""

    name: str
    arguments: Tuple[Expression, ...]

    def evaluate(self, context: EvalContext) -> object:
        function = _SCALAR_FUNCTIONS.get(self.name.lower())
        if function is None:
            raise QueryError(f"unknown scalar function {self.name!r}")
        return function(
            *(argument.evaluate(context) for argument in self.arguments)
        )

    def references(self) -> Tuple[str, ...]:
        refs: Tuple[str, ...] = ()
        for argument in self.arguments:
            refs += argument.references()
        return refs


_SCALAR_FUNCTIONS: Dict[str, Callable[..., object]] = {
    "abs": lambda x: abs(x),
    "least": lambda *xs: min(xs),
    "greatest": lambda *xs: max(xs),
}
