"""Parity and stopping suite for the adaptive-precision estimation engine.

The adaptive engine's contract (ISSUE 3), modeled on
``test_parallel_parity.py``:

* **Disabled-policy bitwise parity** — with ``adaptive=None`` every path
  is bit-identical to the fixed-budget engine, and a policy that can
  never trigger (cap-sized ``min_samples``) draws the full budget with
  bit-identical metrics despite going through the block-growth loop.
* **Worker invariance** — with the policy enabled, serial and sharded
  sweeps (workers 1/2/4) produce bit-identical metrics, decisions,
  per-point sample counts, and counters.
* **Cap honored** — no point ever exceeds the fixed budget (or a smaller
  ``max_samples``), so adaptive runs are never more expensive.
* **CI width shrinks** — the interval half-width decreases in the sample
  count, and converged points actually meet the requested tolerance.
"""

import math

import numpy as np
import pytest

from repro.bench.workloads import capacity_workload, overload_workload
from repro.blackbox import default_registry
from repro.core import (
    AdaptiveBudget,
    BasisStore,
    Estimator,
    ParameterExplorer,
    ParallelExplorer,
    fixed_budget_samples,
    saved_fraction,
)
from repro.core.adaptive import grow_samples, next_target
from repro.core.mapping import IdentityMappingFamily
from repro.errors import EstimatorError
from repro.interactive import InteractiveSession
from repro.lang import compile_query
from repro.scenario import ScenarioRunner
from repro.scenario.parameter import RangeParameter
from repro.scenario.space import ParameterSpace

WORKER_COUNTS = (1, 2, 4)

POLICY = AdaptiveBudget(rtol=0.05)


def _capacity():
    return capacity_workload(weeks=10, purchase_step=4)


def _serial(adaptive, samples=1000):
    workload = _capacity()
    explorer = ParameterExplorer(
        workload.simulation(),
        samples_per_point=samples,
        fingerprint_size=workload.fingerprint_size,
        adaptive=adaptive,
    )
    return explorer.run(workload.points)


def _parallel(adaptive, workers, samples=1000):
    workload = _capacity()
    explorer = ParallelExplorer(
        workload.simulation(),
        workers=workers,
        samples_per_point=samples,
        fingerprint_size=workload.fingerprint_size,
        adaptive=adaptive,
    )
    return explorer.run(workload.points)


class TestPolicyValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(EstimatorError):
            AdaptiveBudget(rtol=0.0)
        with pytest.raises(EstimatorError):
            AdaptiveBudget(rtol=0.05, confidence=1.0)
        with pytest.raises(EstimatorError):
            AdaptiveBudget(rtol=0.05, max_samples=0)
        with pytest.raises(EstimatorError):
            AdaptiveBudget(rtol=0.05, min_samples=1)
        with pytest.raises(EstimatorError):
            AdaptiveBudget(rtol=0.05, method="bootstrap")
        with pytest.raises(EstimatorError):
            AdaptiveBudget(rtol=0.05, atol=-1.0)

    def test_z_value_matches_known_quantiles(self):
        assert AdaptiveBudget(rtol=0.1, confidence=0.95).z_value == (
            pytest.approx(1.959964, abs=1e-5)
        )
        assert AdaptiveBudget(rtol=0.1, confidence=0.99).z_value == (
            pytest.approx(2.575829, abs=1e-5)
        )

    def test_cap_defaults_to_fixed_budget(self):
        assert AdaptiveBudget(rtol=0.1).cap(500) == 500
        assert AdaptiveBudget(rtol=0.1, max_samples=100).cap(500) == 100
        assert AdaptiveBudget(rtol=0.1, max_samples=900).cap(500) == 500


class TestDisabledParity:
    """Policy off == the pre-adaptive engine, bitwise."""

    def test_explorer_none_is_bitwise_fixed(self):
        fixed = _serial(adaptive=None)
        again = _serial(adaptive=None)
        assert fixed.stats == again.stats
        for key, point in fixed.points.items():
            assert again.points[key].metrics == point.metrics
            assert again.points[key].samples_drawn == point.samples_drawn

    def test_untriggerable_policy_is_bitwise_fixed(self):
        """A policy whose min_samples equals the cap can never stop early:
        it must draw the full budget through the block loop and land on
        bit-identical metrics and counters (block-wise draws == one-shot
        draw, by the batch engine's per-seed independence)."""
        fixed = _serial(adaptive=None, samples=200)
        blocked = _serial(
            adaptive=AdaptiveBudget(rtol=1e-12, min_samples=200),
            samples=200,
        )
        assert blocked.stats == fixed.stats
        for key, point in fixed.points.items():
            assert blocked.points[key].metrics == point.metrics
            assert blocked.points[key].reused == point.reused
            assert blocked.points[key].basis_id == point.basis_id
            assert (
                blocked.points[key].samples_drawn == point.samples_drawn
            )

    def test_scenario_runner_untriggerable_policy_bitwise(self):
        bound = compile_query(SCENARIO_QUERY, default_registry())
        fixed = ScenarioRunner(bound.scenario, samples_per_point=120).run()
        blocked = ScenarioRunner(
            bound.scenario,
            samples_per_point=120,
            adaptive=AdaptiveBudget(rtol=1e-12, min_samples=120),
        ).run()
        assert blocked.stats == fixed.stats
        assert blocked.metrics == fixed.metrics


class TestWorkerParity:
    """Adaptive decisions are deterministic per seed and shard-invariant."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_explorer_bit_identical_across_workers(self, workers):
        serial = _serial(POLICY)
        parallel = _parallel(POLICY, workers)
        assert parallel.stats == serial.stats
        assert len(parallel) == len(serial)
        for key, point in serial.points.items():
            other = parallel.points[key]
            assert other.metrics == point.metrics
            assert other.reused == point.reused
            assert other.basis_id == point.basis_id
            assert other.samples_drawn == point.samples_drawn

    @pytest.mark.parametrize("workers", (2, 4))
    def test_scenario_runner_across_workers(self, workers):
        bound = compile_query(SCENARIO_QUERY, default_registry())
        serial = ScenarioRunner(
            bound.scenario, samples_per_point=200, adaptive=POLICY
        ).run()
        parallel = ScenarioRunner(
            bound.scenario,
            samples_per_point=200,
            adaptive=POLICY,
            workers=workers,
        ).run()
        assert parallel.stats == serial.stats
        assert parallel.metrics == serial.metrics
        assert parallel.parallel is not None
        assert parallel.parallel.workers == workers

    def test_identity_family_boolean_output(self):
        """Overload's 0/1 column under identity-only matching: the
        Bernstein interval suits bounded indicators; parity must hold."""
        policy = AdaptiveBudget(rtol=0.2, method="bernstein")
        workload = overload_workload(weeks=8, purchase_step=4)
        serial_run = ParameterExplorer(
            workload.simulation(),
            samples_per_point=400,
            fingerprint_size=workload.fingerprint_size,
            basis_store=BasisStore(
                mapping_family=IdentityMappingFamily(),
                index_strategy="array",
            ),
            adaptive=policy,
        ).run(workload.points)
        for workers in (2, 4):
            workload = overload_workload(weeks=8, purchase_step=4)
            parallel = ParallelExplorer(
                workload.simulation(),
                workers=workers,
                samples_per_point=400,
                fingerprint_size=workload.fingerprint_size,
                mapping_family=IdentityMappingFamily(),
                index_strategy="array",
                adaptive=policy,
            ).run(workload.points)
            for key, point in serial_run.points.items():
                assert parallel.points[key].metrics == point.metrics
                assert (
                    parallel.points[key].samples_drawn
                    == point.samples_drawn
                )

    def test_reuse_pattern_matches_fixed_budget(self):
        """Fingerprints are unaffected by adaptive stopping, so the reuse
        decisions — and hence fixed_budget_samples' denominator — match
        the fixed engine's exactly."""
        fixed = _serial(adaptive=None)
        adaptive = _serial(POLICY)
        assert adaptive.stats.points_total == fixed.stats.points_total
        assert adaptive.stats.points_reused == fixed.stats.points_reused
        assert adaptive.stats.bases_created == fixed.stats.bases_created
        for key, point in fixed.points.items():
            assert adaptive.points[key].reused == point.reused


class TestCapHonored:
    def test_no_point_exceeds_fixed_budget(self):
        run = _serial(POLICY, samples=300)
        for point in run.points.values():
            assert point.samples_drawn <= 300
        assert run.stats.samples_drawn <= 300 * run.stats.points_total

    def test_max_samples_caps_below_budget(self):
        policy = AdaptiveBudget(rtol=1e-12, max_samples=64)
        run = _serial(policy, samples=300)
        for point in run.points.values():
            if not point.reused:
                assert point.samples_drawn <= 64

    def test_adaptive_never_more_expensive(self):
        fixed = _serial(adaptive=None, samples=500)
        adaptive = _serial(POLICY, samples=500)
        assert adaptive.stats.samples_drawn <= fixed.stats.samples_drawn

    def test_saved_fraction_reported(self):
        run = _serial(POLICY, samples=1000)
        budget = fixed_budget_samples(
            run.stats.points_total, run.stats.points_reused, 1000, 10
        )
        saved = saved_fraction(run.stats.samples_drawn, budget)
        assert 0.0 < saved < 1.0


class TestConfidenceInterval:
    def test_halfwidth_shrinks_with_count(self):
        policy = AdaptiveBudget(rtol=0.05)
        widths = [
            policy.halfwidth(count, stddev=2.0, value_range=8.0)
            for count in (32, 128, 512, 2048)
        ]
        assert widths == sorted(widths, reverse=True)
        assert widths[-1] < widths[0] / 4

    def test_bernstein_halfwidth_shrinks_with_count(self):
        policy = AdaptiveBudget(rtol=0.05, method="bernstein")
        widths = [
            policy.halfwidth(count, stddev=0.5, value_range=1.0)
            for count in (32, 128, 512, 2048)
        ]
        assert widths == sorted(widths, reverse=True)

    def test_halfwidth_infinite_below_two_samples(self):
        policy = AdaptiveBudget(rtol=0.05)
        assert math.isinf(policy.halfwidth(1, stddev=1.0, value_range=1.0))

    def test_converged_points_meet_tolerance(self):
        """Every early-stopped point's interval is inside rtol * |mean|."""
        run = _serial(POLICY, samples=1000)
        stopped_early = 0
        for point in run.points.values():
            if point.reused or point.samples_drawn >= 1000:
                continue
            stopped_early += 1
            metrics = point.metrics
            halfwidth = POLICY.halfwidth(
                metrics.count,
                metrics.stddev,
                metrics.maximum - metrics.minimum,
            )
            assert halfwidth <= POLICY.tolerance(metrics.expectation)
        assert stopped_early > 0  # the policy actually fired

    def test_ci_width_shrinks_during_growth(self):
        """The interval at each block boundary narrows as samples grow."""
        rng = np.random.default_rng(7)
        policy = AdaptiveBudget(rtol=1e-9)  # never converges: full cap
        widths = []

        def draw(start, count):
            return rng.normal(10.0, 2.0, size=count)

        samples = grow_samples(draw(0, 10), draw, cap=2048, policy=policy)
        size = 10
        while size < 2048:
            size = next_target(size, 2048, policy)
            window = samples[:size]
            widths.append(
                policy.halfwidth(
                    size,
                    float(window.std()),
                    float(window.max() - window.min()),
                )
            )
        assert len(widths) >= 4
        # Noise can wiggle one step; the trend must be strictly downward.
        assert widths[-1] < widths[0] / 3
        assert all(b < a * 1.05 for a, b in zip(widths, widths[1:]))

    def test_estimator_converged_on_metric_sets(self):
        estimator = Estimator()
        tight = estimator.estimate(np.full(100, 5.0))
        assert estimator.converged(tight, POLICY)
        wide = estimator.estimate(
            np.concatenate([np.zeros(50), np.ones(50) * 10.0])
        )
        assert not estimator.converged(wide, POLICY)
        assert estimator.halfwidth(wide, POLICY) > 0.0

    def test_zero_mean_needs_atol_to_stop(self):
        """Pure relative tolerance cannot certify a zero mean; atol can."""
        noisy = np.concatenate([np.ones(500), -np.ones(500)])
        relative_only = AdaptiveBudget(rtol=0.05)
        assert not relative_only.satisfied_by(noisy)
        with_floor = AdaptiveBudget(rtol=0.05, atol=0.5)
        assert with_floor.satisfied_by(noisy)


class TestInteractiveAdaptive:
    def _session(self, policy):
        space = ParameterSpace([RangeParameter("x", 0.0, 4.0, 1.0)])
        return InteractiveSession(
            lambda params, seed: params["x"] * 3.0 + (seed % 7) * 1e-9,
            space,
            chunk=5,
            adaptive=policy,
        )

    def test_refinement_skips_converged_points(self):
        session = self._session(AdaptiveBudget(rtol=0.05, min_samples=10))
        session.focus({"x": 2.0})
        drawn = [session._do_refinement({"x": 2.0}).samples_drawn]
        for _ in range(8):
            drawn.append(session._do_refinement({"x": 2.0}).samples_drawn)
        # The nearly-deterministic simulation converges immediately at the
        # fingerprint size, so every refinement tick is a no-op.
        assert drawn[-1] == 0
        assert sum(drawn) == 0

    def test_refinement_draws_until_cap_without_convergence(self):
        policy = AdaptiveBudget(rtol=1e-15, min_samples=10, max_samples=25)
        session = self._session(policy)
        session.focus({"x": 1.0})
        total = 0
        for _ in range(10):
            total += session._do_refinement({"x": 1.0}).samples_drawn
        # 10 fingerprint samples grow in chunks of 5 up to the 25-sample
        # policy cap, then refinement stops drawing.
        assert session.sample_count({"x": 1.0}) == 25
        assert total == 15

    def test_disabled_policy_always_refines(self):
        session = self._session(None)
        session.focus({"x": 1.0})
        report = session._do_refinement({"x": 1.0})
        assert report.samples_drawn == 5


SCENARIO_QUERY = """
DECLARE PARAMETER @current_week AS RANGE 0 TO 14 STEP BY 1;
SELECT DemandModel(@current_week, 4) AS demand,
       CapacityModel(@current_week, 2, 6) AS capacity
INTO results;
"""


class TestScenarioAdaptive:
    @pytest.fixture(scope="class")
    def bound(self):
        return compile_query(SCENARIO_QUERY, default_registry())

    def test_joint_stopping_saves_rounds(self, bound):
        fixed = ScenarioRunner(bound.scenario, samples_per_point=400).run()
        adaptive = ScenarioRunner(
            bound.scenario, samples_per_point=400, adaptive=POLICY
        ).run()
        assert (
            adaptive.stats.rounds_executed < fixed.stats.rounds_executed
        )
        assert adaptive.stats.points_reused == fixed.stats.points_reused

    def test_cap_honored_per_point(self, bound):
        runner = ScenarioRunner(
            bound.scenario,
            samples_per_point=400,
            adaptive=AdaptiveBudget(rtol=1e-12),
        )
        result = runner.run()
        # Nothing converges at rtol=1e-12, so every simulated point runs
        # to exactly the fixed budget: bit-parity via the cap.
        fixed = ScenarioRunner(bound.scenario, samples_per_point=400).run()
        assert result.stats == fixed.stats
        assert result.metrics == fixed.metrics


class TestCliAdaptive:
    def test_run_with_rtol_reports_savings(self, tmp_path, capsys):
        from repro.cli import main

        query = tmp_path / "scenario.sql"
        query.write_text(
            "DECLARE PARAMETER @current_week AS RANGE 0 TO 9 STEP BY 1;\n"
            "SELECT DemandModel(@current_week, 3) AS demand INTO results;\n"
        )
        assert (
            main(
                [
                    "run", str(query),
                    "--samples", "400",
                    "--rtol", "0.05",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "adaptive rtol=0.05" in out
        assert "saved" in out

    def test_adaptive_estimates_worker_invariant_via_cli(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        query = tmp_path / "scenario.sql"
        query.write_text(
            "DECLARE PARAMETER @current_week AS RANGE 0 TO 6 STEP BY 1;\n"
            "SELECT DemandModel(@current_week, 3) AS demand INTO results;\n"
        )
        args = ["run", str(query), "--samples", "300", "--rtol", "0.1"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out.splitlines()[1:] == serial_out.splitlines()[1:]

    def test_rtol_validation(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "q.sql", "--rtol", "-0.5"])
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "q.sql", "--confidence", "1.5"])
        capsys.readouterr()
