"""Figure 12: Markov process performance vs branching factor.

Paper shape: at low branching the jump evaluator is an order of magnitude
faster per step (the chain advances at fingerprint cost, m of n instances);
the advantage shrinks as the branching factor grows toward ~1/20 per step.
"""

import pytest

from repro.bench.workloads import markov_branch_model
from repro.core.markov import MarkovJumpRunner, NaiveMarkovRunner

STEPS = 128
INSTANCES = 200
BRANCHINGS = (1e-4, 1e-2, 1e-1)


@pytest.mark.parametrize("branching", BRANCHINGS, ids=lambda b: f"{b:g}")
def test_naive(benchmark, branching):
    def run():
        model = markov_branch_model(branching)
        return NaiveMarkovRunner(model, instance_count=INSTANCES).run(STEPS)

    benchmark.pedantic(run, rounds=2, iterations=1)


@pytest.mark.parametrize("branching", BRANCHINGS, ids=lambda b: f"{b:g}")
def test_jigsaw(benchmark, branching):
    def run():
        model = markov_branch_model(branching)
        return MarkovJumpRunner(
            model, instance_count=INSTANCES, fingerprint_size=10
        ).run(STEPS)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["jumps"] = len(result.jumps)
    benchmark.extra_info["full_steps"] = result.full_steps


def test_fig12_shape():
    """Invocation-count shape: the jump advantage decays with branching."""

    def invocation_ratio(branching):
        naive_model = markov_branch_model(branching)
        naive = NaiveMarkovRunner(
            naive_model, instance_count=INSTANCES
        ).run(STEPS)
        jump_model = markov_branch_model(branching)
        jump = MarkovJumpRunner(
            jump_model, instance_count=INSTANCES, fingerprint_size=10
        ).run(STEPS)
        return naive.step_invocations / jump.step_invocations

    low = invocation_ratio(1e-4)
    mid = invocation_ratio(1e-2)
    high = invocation_ratio(1e-1)
    assert low > 5.0
    assert low > mid > high
