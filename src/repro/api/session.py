"""The unified session facade over basis-store reuse state.

Before this module the library had four divergent warm-start entry
points — ``ParameterExplorer``/``ParallelExplorer(basis_store=)``,
``ScenarioRunner.save_stores``/``load_stores``,
``InteractiveSession.save_store``/``load_store``, and the CLI's
``--store``/``--save-store`` — each calling :mod:`repro.core.persist`
with its own conventions.  :class:`Session` is the one surface behind
all of them:

* it owns a named collection of :class:`~repro.core.basis.BasisStore`
  instances plus the seed bank they were fingerprinted under,
* it opens and saves snapshots (:meth:`Session.open` / :meth:`save` —
  the old entry points now delegate here and keep working),
* it answers the typed request vocabulary of
  :mod:`repro.api.messages` (estimate / match / refine / stats, plus
  the evict / compact lifecycle admin kinds), both one at a time
  (:meth:`handle`) and in micro-batches routed through
  :meth:`BasisStore.match_batch` (:meth:`handle_batch`), and
* it can stand in anywhere a ``basis_store=`` argument is expected —
  explorers resolve a passed Session to its store via
  :meth:`resolve_basis_store`.

**Batching invariant.**  ``handle_batch(requests)`` returns bitwise the
same responses — ids, mapping parameters, metrics, per-probe counters —
as ``[handle(r) for r in requests]``: probes inside a batch are
read-only against the store (the PR 4 ``match_batch`` parity
invariant), and any mutating request (refine) flushes the pending probe
run first, so sequential semantics are preserved exactly.  The serving
daemon leans on this to admit concurrent clients into batches without
changing a single answer.

**Thread safety.**  A Session serializes store access behind one
reentrant lock: concurrent threads may share a Session (the daemon's
dispatcher, the concurrent-reader tests), and counter totals equal the
serial sequence's.  The underlying stores themselves remain
single-threaded objects — never bypass a shared Session to poke one.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Union

import numpy as np

from repro.api.messages import (
    DEFAULT_STORE,
    CompactRequest,
    CompactResponse,
    ErrorResponse,
    EstimateRequest,
    EstimateResponse,
    EvictRequest,
    EvictResponse,
    MatchRequest,
    MatchResponse,
    RefineRequest,
    RefineResponse,
    ShutdownRequest,
    ShutdownResponse,
    StatsRequest,
    StatsResponse,
)
from repro.core.basis import BasisStore, EvictionPolicy
from repro.core.estimator import Estimator
from repro.core.fingerprint import Fingerprint
from repro.core.seeds import DEFAULT_SEED_BANK, SeedBank
from repro.errors import ApiError, JigsawError

StoreArg = Union[BasisStore, Mapping[str, BasisStore]]


class Session:
    """In-process facade over one or more basis stores (see module doc)."""

    def __init__(
        self,
        stores: Optional[StoreArg] = None,
        seed_bank: Optional[SeedBank] = None,
        estimator: Optional[Estimator] = None,
        eviction: Optional[EvictionPolicy] = None,
        backend=None,
    ):
        if stores is None:
            stores = BasisStore(estimator=estimator)
        if isinstance(stores, BasisStore):
            stores = {DEFAULT_STORE: stores}
        if not stores:
            raise ApiError("a session needs at least one store")
        self._stores: Dict[str, BasisStore] = dict(stores)
        #: Compute backend shared by this session's stores.  ``None``
        #: leaves each store's own (constructor-resolved) backend in
        #: place; a name or instance is resolved once and installed on
        #: every store, so the whole session shares one
        #: verification/degrade scope and ``stats()`` reports it.
        self.backend = None
        if backend is not None:
            from repro.core.backend import resolve_backend

            self.backend = resolve_backend(backend)
            for store in self._stores.values():
                store.backend = self.backend
        self.seed_bank = seed_bank or DEFAULT_SEED_BANK
        self.estimator = estimator
        #: Standing eviction bound, re-applied to a store after every
        #: refine (the only in-session mutation that grows state) — a
        #: long-running daemon with a policy stays within it indefinitely.
        #: Admin :class:`EvictRequest` messages work with or without one.
        self.eviction = eviction
        self._lock = threading.RLock()

    # -- construction / persistence (the unified warm-start surface) -------

    @classmethod
    def create(
        cls,
        mapping_family=None,
        index_strategy: str = "normalization",
        estimator: Optional[Estimator] = None,
        seed_bank: Optional[SeedBank] = None,
        backend=None,
    ) -> "Session":
        """A fresh single-store session (cold start)."""
        store = BasisStore(
            mapping_family=mapping_family,
            index_strategy=index_strategy,
            estimator=estimator,
        )
        return cls(
            store, seed_bank=seed_bank, estimator=estimator, backend=backend
        )

    @classmethod
    def open(
        cls,
        path: str,
        like: Optional[StoreArg] = None,
        seed_bank: Optional[SeedBank] = None,
        estimator: Optional[Estimator] = None,
        mmap: bool = True,
        backend=None,
    ) -> "Session":
        """Open a snapshot as a warm session (zero-copy mmap by default).

        ``like`` carries the caller's configured store(s) for the
        compatibility check, exactly as :func:`repro.core.persist.
        load_stores` expects; a single store stands for ``"default"``.
        The configured ``seed_bank`` (default: the process-wide bank) is
        validated against the one recorded at save time — incompatible
        snapshots refuse with a typed error rather than serving
        silently-wrong reuse.
        """
        from repro.core import persist

        if isinstance(like, BasisStore):
            like = {DEFAULT_STORE: like}
        bank = seed_bank or DEFAULT_SEED_BANK
        stores = persist.load_stores(
            path,
            like=like,
            seed_bank=bank,
            estimator=estimator,
            mmap=mmap,
        )
        return cls(
            stores, seed_bank=bank, estimator=estimator, backend=backend
        )

    def save(self, path: str, metadata: Optional[dict] = None) -> None:
        """Atomically snapshot every store (see :mod:`repro.core.persist`)."""
        from repro.core import persist

        with self._lock:
            persist.save_stores(
                self._stores, path, seed_bank=self.seed_bank,
                metadata=metadata,
            )

    # -- store access -------------------------------------------------------

    @property
    def stores(self) -> Dict[str, BasisStore]:
        """Named stores (a copy; the name -> store binding is not
        caller-mutable, the stores themselves are live)."""
        with self._lock:
            return dict(self._stores)

    @property
    def store_names(self) -> List[str]:
        with self._lock:
            return sorted(self._stores)

    def store(self, name: str = DEFAULT_STORE) -> BasisStore:
        with self._lock:
            try:
                return self._stores[name]
            except KeyError:
                raise ApiError(
                    f"session has no store named {name!r} "
                    f"(available: {sorted(self._stores)})"
                ) from None

    def resolve_basis_store(
        self, name: str = DEFAULT_STORE
    ) -> BasisStore:
        """The store to hand an explorer's ``basis_store=`` argument.

        Explorers and the interactive engine accept a Session wherever
        they accept a store and call this to unwrap it — which is how
        ``Session.open(path)`` became the single warm-start spelling.
        """
        return self.store(name)

    def basis_count(self) -> int:
        """Total bases across every store (CLI/diagnostics)."""
        with self._lock:
            return sum(len(store) for store in self._stores.values())

    # -- typed request handlers --------------------------------------------

    def match(self, request: MatchRequest) -> MatchResponse:
        """FindMatch probe (paper Algorithm 3's matching half)."""
        with self._lock:
            store = self.store(request.store)
            result, tested = self._probe(store, request.fingerprint)
            if result is None:
                return MatchResponse(
                    matched=False,
                    candidates_tested=tested,
                    store=request.store,
                    request_id=request.request_id,
                )
            return MatchResponse(
                matched=True,
                basis_id=result.basis.basis_id,
                mapping=result.mapping,
                candidates_tested=tested,
                store=request.store,
                request_id=request.request_id,
            )

    def estimate(self, request: EstimateRequest) -> EstimateResponse:
        """FindMatch plus metric remapping: the cheap what-if answer."""
        with self._lock:
            store = self.store(request.store)
            result, tested = self._probe(store, request.fingerprint)
            if result is None:
                return EstimateResponse(
                    matched=False,
                    candidates_tested=tested,
                    store=request.store,
                    request_id=request.request_id,
                )
            metrics = store.metrics_for(result.basis, result.mapping)
            return EstimateResponse(
                matched=True,
                basis_id=result.basis.basis_id,
                mapping=result.mapping,
                metrics=metrics,
                candidates_tested=tested,
                store=request.store,
                request_id=request.request_id,
            )

    def refine(self, request: RefineRequest) -> RefineResponse:
        """Fold refinement samples (basis coordinates) into a basis."""
        if not request.samples:
            raise ApiError("refine needs at least one sample")
        with self._lock:
            store = self.store(request.store)
            try:
                store.get(request.basis_id)
            except KeyError:
                raise ApiError(
                    f"store {request.store!r} has no basis "
                    f"{request.basis_id}"
                ) from None
            basis = store.extend_basis(
                request.basis_id,
                np.asarray(request.samples, dtype=float),
            )
            response = RefineResponse(
                basis_id=basis.basis_id,
                sample_count=int(basis.samples.size),
                metrics=basis.metrics,
                store=request.store,
                request_id=request.request_id,
            )
            if self.eviction is not None:
                # Refines are the only in-session growth; re-applying the
                # standing bound here keeps a long-running session within
                # it.  The response reflects the refine that did happen,
                # even if the policy then retired the refined basis.
                store.evict(self.eviction)
            return response

    def stats(
        self, request: Optional[StatsRequest] = None
    ) -> StatsResponse:
        """Deterministic counters and basis counts per store."""
        request = request or StatsRequest()
        with self._lock:
            return StatsResponse(
                counters={
                    name: store.stats.as_dict()
                    for name, store in sorted(self._stores.items())
                },
                bases={
                    name: len(store)
                    for name, store in sorted(self._stores.items())
                },
                backend={
                    name: store.backend.describe()
                    for name, store in sorted(self._stores.items())
                },
                request_id=request.request_id,
            )

    def evict(self, request: EvictRequest) -> EvictResponse:
        """Admin: bound one store (or all) by an eviction policy now.

        Survivors answer every future probe bitwise as a store rebuilt
        from only them would (the lifecycle parity invariant); evicted
        ids are retired permanently, never reissued.
        """
        if request.max_bases is None and request.max_bytes is None:
            raise ApiError(
                "evict needs max_bases and/or max_bytes; an unbounded "
                "eviction would be a no-op"
            )
        policy = EvictionPolicy(
            max_bases=request.max_bases,
            max_bytes=request.max_bytes,
            keep=request.keep,
        )
        with self._lock:
            names = (
                sorted(self._stores)
                if request.store is None
                else [request.store]
            )
            evicted: Dict[str, tuple] = {}
            bases: Dict[str, int] = {}
            for name in names:
                store = self.store(name)
                evicted[name] = tuple(store.evict(policy))
                bases[name] = len(store)
            return EvictResponse(
                evicted=evicted,
                bases=bases,
                request_id=request.request_id,
            )

    def compact(self, request: Optional[CompactRequest] = None):
        """Admin: drop tombstoned columnar rows now (also migrates any
        version-1 state to the compacted on-disk form at the next save)."""
        request = request or CompactRequest()
        with self._lock:
            names = (
                sorted(self._stores)
                if request.store is None
                else [request.store]
            )
            rows_dropped: Dict[str, int] = {}
            bases: Dict[str, int] = {}
            for name in names:
                store = self.store(name)
                rows_dropped[name] = store.compact()
                bases[name] = len(store)
            return CompactResponse(
                rows_dropped=rows_dropped,
                bases=bases,
                request_id=request.request_id,
            )

    # -- generic dispatch ---------------------------------------------------

    def handle(self, request):
        """Serve one request; typed misuse becomes an ``ErrorResponse``.

        This is the transport-facing entry: a bad request in a stream
        answers with an error instead of raising, so daemons (and batch
        loops) keep serving.
        """
        try:
            if isinstance(request, MatchRequest):
                return self.match(request)
            if isinstance(request, EstimateRequest):
                return self.estimate(request)
            if isinstance(request, RefineRequest):
                return self.refine(request)
            if isinstance(request, StatsRequest):
                return self.stats(request)
            if isinstance(request, EvictRequest):
                return self.evict(request)
            if isinstance(request, CompactRequest):
                return self.compact(request)
            if isinstance(request, ShutdownRequest):
                # In-process there is nothing to drain; the daemon
                # intercepts this kind before it reaches the session.
                return ShutdownResponse(
                    draining=True, request_id=request.request_id
                )
        except JigsawError as error:
            return ErrorResponse(
                code=type(error).__name__,
                message=str(error),
                request_id=getattr(request, "request_id", None),
            )
        return ErrorResponse(
            code="ApiError",
            message=f"unsupported request type {type(request).__name__}",
            request_id=getattr(request, "request_id", None),
        )

    def handle_batch(self, requests) -> List[object]:
        """Serve a micro-batch; bitwise equal to sequential :meth:`handle`.

        Maximal runs of probe requests (match/estimate) are grouped per
        store and answered through one
        :meth:`~repro.core.basis.BasisStore.match_batch` call each —
        the daemon's admission batches land here.  Mutating or
        administrative requests flush the pending run first, preserving
        sequential semantics exactly.
        """
        requests = list(requests)
        responses: List[Optional[object]] = [None] * len(requests)
        with self._lock:
            run: List[int] = []
            for position, request in enumerate(requests):
                if isinstance(request, (MatchRequest, EstimateRequest)):
                    run.append(position)
                    continue
                self._flush_probe_run(requests, run, responses)
                run = []
                responses[position] = self.handle(request)
            self._flush_probe_run(requests, run, responses)
        return responses

    # -- internals ----------------------------------------------------------

    def _probe(self, store: BasisStore, fingerprint) -> tuple:
        """One counted FindMatch probe; returns (result, tested)."""
        if not fingerprint:
            raise ApiError("a probe fingerprint needs at least one entry")
        before = store.stats.candidates_tested
        result = store.match(Fingerprint(fingerprint))
        return result, store.stats.candidates_tested - before

    def _flush_probe_run(self, requests, run, responses) -> None:
        """Answer a run of probe requests through per-store match_batch."""
        if not run:
            return
        by_store: Dict[str, List[int]] = {}
        for position in run:
            by_store.setdefault(requests[position].store, []).append(
                position
            )
        for store_name, positions in by_store.items():
            try:
                store = self.store(store_name)
            except ApiError as error:
                for position in positions:
                    responses[position] = ErrorResponse(
                        code="ApiError",
                        message=str(error),
                        request_id=requests[position].request_id,
                    )
                continue
            probes = []
            for position in positions:
                values = requests[position].fingerprint
                if not values:
                    responses[position] = ErrorResponse(
                        code="ApiError",
                        message=(
                            "a probe fingerprint needs at least one entry"
                        ),
                        request_id=requests[position].request_id,
                    )
                else:
                    probes.append((position, Fingerprint(values)))
            if not probes:
                # Every probe in this group was malformed; sequential
                # handle() never touches the store for a bad request, so
                # the batch path must not call match_batch either.
                continue
            tested_counts: List[int] = []
            results = store.match_batch(
                [fp for _, fp in probes], tested_out=tested_counts
            )
            for (position, _), result, tested in zip(
                probes, results, tested_counts
            ):
                request = requests[position]
                if isinstance(request, MatchRequest):
                    if result is None:
                        responses[position] = MatchResponse(
                            matched=False,
                            candidates_tested=tested,
                            store=store_name,
                            request_id=request.request_id,
                        )
                    else:
                        responses[position] = MatchResponse(
                            matched=True,
                            basis_id=result.basis.basis_id,
                            mapping=result.mapping,
                            candidates_tested=tested,
                            store=store_name,
                            request_id=request.request_id,
                        )
                elif result is None:
                    responses[position] = EstimateResponse(
                        matched=False,
                        candidates_tested=tested,
                        store=store_name,
                        request_id=request.request_id,
                    )
                else:
                    responses[position] = EstimateResponse(
                        matched=True,
                        basis_id=result.basis.basis_id,
                        mapping=result.mapping,
                        metrics=store.metrics_for(
                            result.basis, result.mapping
                        ),
                        candidates_tested=tested,
                        store=store_name,
                        request_id=request.request_id,
                    )
